//! Metadata-only ghost caches: a candidate policy simulated against the
//! live access stream without holding a single data frame.
//!
//! A [`GhostCache`] wraps one `ReplacementPolicy` instance and plays the
//! buffer manager's role for it: every access the real cache sees is
//! replayed as a fingerprint-only lookup — a hit refreshes the candidate's
//! recency metadata, a miss "installs" the key into a simulated frame,
//! evicting by the candidate's own ranking when the simulated pool is
//! full. The resulting hit/miss ledger is what the candidate's hit rate
//! *would have been* had it been live, which is exactly the signal the
//! epoch controller compares.
//!
//! Ghosts never pin frames, never see dirty state, and never hold data —
//! only the policy's ranking metadata and a `key → frame` map exist
//! (property-tested in `tests/invariants.rs`).

use kcache_policy::{AppId, PolicyKind, ReplacementPolicy};
use std::collections::HashMap;

/// One candidate's simulated cache.
pub struct GhostCache {
    kind: PolicyKind,
    policy: Box<dyn ReplacementPolicy>,
    /// Key fingerprint → simulated frame index.
    map: HashMap<u64, u32>,
    free: Vec<u32>,
    /// Hits/misses within the current epoch (reset by the controller).
    epoch_hits: u64,
    epoch_misses: u64,
    /// Lifetime ledger.
    hits: u64,
    misses: u64,
}

impl GhostCache {
    /// Simulate `kind` over a pool of `capacity` frames (the live cache's
    /// capacity, so ghost hit rates are comparable to the live one's).
    pub fn new(kind: PolicyKind, capacity: usize) -> GhostCache {
        GhostCache {
            kind,
            policy: kind.build(capacity),
            map: HashMap::with_capacity(capacity),
            free: (0..capacity as u32).rev().collect(),
            epoch_hits: 0,
            epoch_misses: 0,
            hits: 0,
            misses: 0,
        }
    }

    pub fn kind(&self) -> PolicyKind {
        self.kind
    }

    /// Replay one access from the live stream. A miss fills the simulated
    /// cache, evicting by the candidate's own ranking when full.
    pub fn access(&mut self, key: u64, app: AppId) {
        if let Some(&frame) = self.map.get(&key) {
            self.hits += 1;
            self.epoch_hits += 1;
            self.policy.on_access(frame, key, app);
            return;
        }
        self.misses += 1;
        self.epoch_misses += 1;
        let frame = match self.free.pop() {
            Some(f) => f,
            None => {
                self.policy.begin_scan();
                let Some(victim) = self.policy.next_candidate(None) else {
                    // Cannot happen while the pool is full and nothing is
                    // pinned (ghosts never pin); drop the fill rather than
                    // panic if a candidate policy misbehaves.
                    return;
                };
                let old_key = self.policy.table().key_of(victim);
                self.map.remove(&old_key);
                self.policy.on_remove(victim, old_key);
                victim
            }
        };
        self.map.insert(key, frame);
        self.policy.on_insert(frame, key, app);
    }

    /// Forward an epoch tick to the simulated policy (time-based aging,
    /// e.g. `SharingAware` referent decay, must happen in the ghost too or
    /// its prediction drifts from what the candidate would really do).
    pub fn epoch_tick(&mut self) {
        let _ = self.policy.epoch_tick(&[]);
    }

    /// Hit rate over the current epoch (`None` before any traffic this
    /// epoch — a silent candidate must not look infinitely bad or good).
    pub fn epoch_rate(&self) -> Option<f64> {
        let total = self.epoch_hits + self.epoch_misses;
        if total == 0 {
            None
        } else {
            Some(self.epoch_hits as f64 / total as f64)
        }
    }

    /// Raw `(hits, accesses)` over the current epoch — the mergeable form
    /// of [`epoch_rate`](Self::epoch_rate): a sharded manager sums these
    /// across shards before comparing candidates, so a busy shard's
    /// evidence outweighs an idle one's instead of averaging away.
    pub fn epoch_counts(&self) -> (u64, u64) {
        (self.epoch_hits, self.epoch_hits + self.epoch_misses)
    }

    /// Reset the per-epoch ledger (lifetime counters keep accumulating).
    pub fn end_epoch(&mut self) {
        self.epoch_hits = 0;
        self.epoch_misses = 0;
    }

    /// Lifetime (hits, misses).
    pub fn lifetime(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// The simulated policy's table (tests: pin/residency invariants).
    pub fn table(&self) -> &kcache_policy::FrameTable {
        self.policy.table()
    }

    /// Simulated keys currently resident (tests).
    pub fn resident_keys(&self) -> Vec<u64> {
        let mut keys: Vec<u64> = self.map.keys().copied().collect();
        keys.sort_unstable();
        keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ghost_simulates_hits_and_evictions() {
        let mut g = GhostCache::new(PolicyKind::ExactLru, 2);
        g.access(1, AppId(0));
        g.access(2, AppId(0));
        g.access(1, AppId(0)); // hit; 2 becomes LRU
        g.access(3, AppId(0)); // evicts 2
        assert_eq!(g.lifetime(), (1, 3));
        assert_eq!(g.resident_keys(), vec![1, 3]);
        g.access(2, AppId(0)); // 2 was evicted: miss again
        assert_eq!(g.lifetime(), (1, 4));
    }

    #[test]
    fn epoch_ledger_resets_lifetime_accumulates() {
        let mut g = GhostCache::new(PolicyKind::Clock, 4);
        g.access(1, AppId(0));
        g.access(1, AppId(0));
        assert_eq!(g.epoch_rate(), Some(0.5));
        g.end_epoch();
        assert_eq!(g.epoch_rate(), None, "fresh epoch has no rate yet");
        assert_eq!(g.lifetime(), (1, 1));
    }

    #[test]
    fn ghost_never_exceeds_capacity() {
        let mut g = GhostCache::new(PolicyKind::Arc, 8);
        for k in 0..1000u64 {
            g.access(k % 37, AppId((k % 3) as u32));
            assert!(g.table().resident_count() <= 8);
            assert_eq!(g.resident_keys().len(), g.table().resident_count());
        }
    }
}
