//! # kcache-adaptive — the online meta-policy subsystem
//!
//! The `kcache-policy` crate makes eviction pluggable; this crate makes
//! the *choice* of policy a runtime decision. An [`AdaptivePolicy`] wraps
//! a set of candidate [`PolicyKind`]s behind the ordinary
//! [`ReplacementPolicy`] trait and closes a feedback loop above them:
//!
//! * **ghost caches** ([`GhostCache`]) — every candidate is simulated,
//!   metadata-only, against the same access stream the live policy
//!   serves; each ghost's hit/miss ledger says what that candidate's hit
//!   rate would have been,
//! * an **epoch controller** — every epoch tick (driven by the buffer
//!   manager off its access counter) the controller compares ghost hit
//!   rates and, when another candidate beats the live one by more than a
//!   hysteresis margin, switches the live policy — migrating the resident
//!   frame state through the shared `FrameTable` so not a single block is
//!   dropped by the switch,
//! * a **quota tuner** — per-application ghost lists remember each app's
//!   recently evicted keys; a re-reference to a remembered key is a
//!   *refault*: a hit the app's partition was too small to keep. Refault
//!   counts are marginal-utility estimates, and each epoch the tuner
//!   recommends moving a few frames of quota from the app that would lose
//!   the least to the app that would gain the most. The buffer manager —
//!   owner of the charge ledger — validates and applies the
//!   recommendation.
//!
//! With a single candidate the wrapper is behaviorally transparent: the
//! ghosts observe but never influence, the controller has nothing to
//! switch to, and the tuner only acts on quota'd apps — pinned
//! byte-for-byte against the static policy by differential tests.

pub mod ghost;

pub use ghost::GhostCache;

use kcache_policy::{
    AccessEvent, AccessKind, AdaptiveStats, AppId, EpochDirective, EpochObservation, FrameTable,
    GhostRate, PolicyKind, QuotaMoveRecord, QuotaUpdate, ReplacementPolicy, SwitchRecord,
};
use std::collections::{BTreeMap, HashSet, VecDeque};

/// The epoch controller's switch rule over per-candidate epoch ghost
/// ledgers `(kind, hits, accesses)`: the best-rated candidate wins a
/// switch when it is not the live one and beats the live rate by more
/// than `hysteresis`. Returns `Some((to, live_rate, best_rate))` when a
/// switch is warranted. Candidates with no traffic this epoch have no
/// rate and cannot win (or be compared against); ties keep the earliest
/// candidate in ledger order.
///
/// Shared verbatim by [`AdaptivePolicy::epoch_tick`] (single-shard
/// decisions) and the sharded buffer manager (which merges per-shard
/// ledgers first) — one rule, so sharding cannot drift the controller.
pub fn decide_switch(
    ledgers: &[(PolicyKind, u64, u64)],
    live: PolicyKind,
    hysteresis: f64,
) -> Option<(PolicyKind, f64, f64)> {
    let rate = |h: u64, a: u64| if a == 0 { None } else { Some(h as f64 / a as f64) };
    let live_rate =
        ledgers.iter().find(|&&(k, _, _)| k == live).and_then(|&(_, h, a)| rate(h, a))?;
    let mut best: Option<(PolicyKind, f64)> = None;
    for &(k, h, a) in ledgers {
        if let Some(r) = rate(h, a) {
            if best.is_none_or(|(_, br)| r > br) {
                best = Some((k, r));
            }
        }
    }
    let (best_kind, best_rate) = best?;
    (best_kind != live && best_rate > live_rate + hysteresis)
        .then_some((best_kind, live_rate, best_rate))
}

/// One quota transfer proposed by the marginal-utility rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuotaMove {
    pub winner: AppId,
    pub loser: AppId,
    /// Frames moved (`loser` shrinks by this, `winner` grows by this).
    pub frames: usize,
    pub winner_quota: usize,
    pub loser_quota: usize,
    pub winner_refaults: u64,
    pub loser_refaults: u64,
}

/// The quota tuner's transfer rule: move up to `quota_step` frames of
/// quota from the app with the fewest epoch refaults to the app with the
/// most, clamped so the loser keeps `quota_floor` frames and the winner
/// never exceeds `capacity` — in full or not at all. `quotas` is the
/// current effective quota per app (ascending app id, as the manager
/// reports it); `refaults` the per-app epoch refault evidence (missing
/// apps count zero). Shared by [`AdaptivePolicy::epoch_tick`] and the
/// sharded manager's coordinated epoch (which merges per-shard refault
/// ledgers first).
pub fn decide_quota_move(
    quotas: &[(AppId, usize)],
    refaults: &[(AppId, u64)],
    capacity: usize,
    quota_step: usize,
    quota_floor: usize,
) -> Option<QuotaMove> {
    if quotas.len() < 2 {
        return None;
    }
    let rf = |app: AppId| refaults.iter().find(|&&(a, _)| a == app).map_or(0, |&(_, n)| n);
    // Winner: most refaults, smaller quota on ties (the squeezed app
    // gains first). Loser: fewest refaults, larger quota on ties (a
    // drained app is not squeezed further). Both deterministic over the
    // ascending-app-id slice.
    let &(winner, wq) = quotas.iter().max_by_key(|&&(a, q)| (rf(a), std::cmp::Reverse(q)))?;
    let &(loser, lq) = quotas
        .iter()
        .filter(|&&(a, _)| a != winner)
        .min_by_key(|&&(a, q)| (rf(a), std::cmp::Reverse(q)))?;
    if rf(winner) <= rf(loser) {
        return None;
    }
    // Clamp to what both sides can honor: the loser keeps at least the
    // fairness floor and the winner never exceeds the pool — a transfer
    // must be applicable in full or not proposed at all (a half-applied
    // pair would leak quota).
    let floor = quota_floor.max(1);
    let frames = quota_step.min(lq.saturating_sub(floor)).min(capacity.saturating_sub(wq));
    (frames > 0).then_some(QuotaMove {
        winner,
        loser,
        frames,
        winner_quota: wq + frames,
        loser_quota: lq - frames,
        winner_refaults: rf(winner),
        loser_refaults: rf(loser),
    })
}

/// Tunables of the meta-policy (the `adaptive` section of experiment
/// configs lowers to this).
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveConfig {
    /// Candidate policies; the first is the initial live policy.
    pub candidates: Vec<PolicyKind>,
    /// Minimum ghost hit-rate advantage (absolute, e.g. 0.02 = 2 points)
    /// a challenger needs over the live candidate to trigger a switch —
    /// the hysteresis that stops rate noise from thrashing the policy.
    pub hysteresis: f64,
    /// Enable the marginal-utility quota tuner (only acts when the
    /// manager actually runs per-app quotas).
    pub quota_tuning: bool,
    /// Frames of quota moved per epoch by the tuner.
    pub quota_step: usize,
    /// Per-application ghost-list capacity in keys (0 = the cache
    /// capacity: remember about one partition's worth of evictions).
    pub ghost_history: usize,
    /// The fairness floor: the tuner never shrinks any app's quota below
    /// this many frames, so a zero-utility tenant cannot be drained to a
    /// single frame by a refault-heavy neighbor. Values below 1 are
    /// treated as 1 (the old behavior — the tuner always kept one frame).
    pub quota_floor: usize,
}

impl AdaptiveConfig {
    /// Candidates with the default controller settings (2-point
    /// hysteresis, tuner on, 8-frame steps).
    pub fn new(candidates: impl IntoIterator<Item = PolicyKind>) -> AdaptiveConfig {
        AdaptiveConfig {
            candidates: candidates.into_iter().collect(),
            hysteresis: 0.02,
            quota_tuning: true,
            quota_step: 8,
            ghost_history: 0,
            quota_floor: 1,
        }
    }

    /// All six built-in policies as candidates.
    pub fn all_candidates() -> AdaptiveConfig {
        AdaptiveConfig::new(PolicyKind::ALL)
    }
}

/// Per-application eviction memory for the quota tuner.
struct AppGhostList {
    recent: VecDeque<u64>,
    set: HashSet<u64>,
    cap: usize,
    /// Re-references to remembered (evicted) keys this epoch — the hits a
    /// bigger quota would have kept.
    epoch_refaults: u64,
}

impl AppGhostList {
    fn new(cap: usize) -> AppGhostList {
        AppGhostList {
            recent: VecDeque::new(),
            set: HashSet::new(),
            cap: cap.max(1),
            epoch_refaults: 0,
        }
    }

    fn remember(&mut self, key: u64) {
        if self.set.insert(key) {
            self.recent.push_back(key);
        }
        while self.set.len() > self.cap {
            match self.recent.pop_front() {
                Some(old) => {
                    self.set.remove(&old);
                }
                None => break,
            }
        }
    }

    fn note_access(&mut self, key: u64) {
        if self.set.remove(&key) {
            self.epoch_refaults += 1;
        }
    }
}

/// The meta-policy. See the crate docs for the control loop; to the
/// buffer manager this is just another [`ReplacementPolicy`] whose
/// [`epoch_tick`](ReplacementPolicy::epoch_tick) happens to do something.
pub struct AdaptivePolicy {
    cfg: AdaptiveConfig,
    capacity: usize,
    live: Box<dyn ReplacementPolicy>,
    /// Index (into `cfg.candidates` / `ghosts`) of the live policy.
    live_idx: usize,
    ghosts: Vec<GhostCache>,
    app_ghosts: BTreeMap<u32, AppGhostList>,
    ghost_cap: usize,
    stats: AdaptiveStats,
}

impl AdaptivePolicy {
    /// Wrap `cfg.candidates` over a pool of `capacity` frames. Duplicate
    /// candidates are dropped (first occurrence wins — a duplicate would
    /// simulate the same kind twice and double-count its ghost ledger).
    /// Panics on an empty candidate list — an adaptive policy with
    /// nothing to adapt between is a config bug.
    pub fn new(capacity: usize, mut cfg: AdaptiveConfig) -> AdaptivePolicy {
        assert!(!cfg.candidates.is_empty(), "adaptive policy with no candidates");
        assert!(capacity > 0, "adaptive policy over empty frame pool");
        let mut seen = Vec::new();
        cfg.candidates.retain(|k| {
            let fresh = !seen.contains(k);
            if fresh {
                seen.push(*k);
            }
            fresh
        });
        let live = cfg.candidates[0].build(capacity);
        let ghosts = cfg.candidates.iter().map(|&k| GhostCache::new(k, capacity)).collect();
        let ghost_cap = if cfg.ghost_history == 0 { capacity } else { cfg.ghost_history };
        AdaptivePolicy {
            cfg,
            capacity,
            live,
            live_idx: 0,
            ghosts,
            app_ghosts: BTreeMap::new(),
            ghost_cap,
            stats: AdaptiveStats::default(),
        }
    }

    /// The candidate list (config echo).
    pub fn candidates(&self) -> &[PolicyKind] {
        &self.cfg.candidates
    }

    /// Feed one access of the live stream to every ghost and the tuner.
    fn observe(&mut self, key: u64, app: AppId) {
        for g in &mut self.ghosts {
            g.access(key, app);
        }
        if self.cfg.quota_tuning && app != AppId::UNKNOWN {
            if let Some(gl) = self.app_ghosts.get_mut(&app.0) {
                gl.note_access(key);
            }
        }
    }

    /// The tuner's config knobs, exposed so a sharded manager can run the
    /// shared [`decide_quota_move`] rule over merged per-shard evidence
    /// with this instance's exact clamps.
    pub fn config(&self) -> &AdaptiveConfig {
        &self.cfg
    }
}

impl ReplacementPolicy for AdaptivePolicy {
    fn kind(&self) -> PolicyKind {
        self.live.kind()
    }

    fn table(&self) -> &FrameTable {
        self.live.table()
    }

    fn table_mut(&mut self) -> &mut FrameTable {
        self.live.table_mut()
    }

    fn on_access(&mut self, frame: u32, key: u64, app: AppId) {
        self.observe(key, app);
        self.live.on_access(frame, key, app);
    }

    /// Ghost feeding moves into the drained batch: every deferred hit and
    /// recency touch is replayed to the candidate simulators and the
    /// tuner's refault lists here — off the access latency path — and the
    /// whole batch is then forwarded so the live policy applies its own
    /// ledger/recency rules (clock skips the `on_access` replay, the
    /// others take the default). Probe hits and misses reach no ghost,
    /// matching the eager path where neither ever called `on_access`.
    fn drain(&mut self, events: &[AccessEvent]) {
        for ev in events {
            match ev.kind {
                AccessKind::Hit | AccessKind::Touch => self.observe(ev.key, ev.app),
                AccessKind::ProbeHit | AccessKind::Miss => {}
            }
        }
        self.live.drain(events);
    }

    fn on_insert(&mut self, frame: u32, key: u64, app: AppId) {
        // An insert is the tail of a miss in the live stream: the ghosts
        // see the same reference.
        self.observe(key, app);
        self.live.on_insert(frame, key, app);
    }

    fn on_remove(&mut self, frame: u32, key: u64) {
        // Remember who lost the frame *before* the table forgets it: a
        // later re-reference to this key by the same app is a refault.
        if self.cfg.quota_tuning {
            let owner = self.live.owner_of(frame);
            if owner != AppId::UNKNOWN {
                let cap = self.ghost_cap;
                self.app_ghosts
                    .entry(owner.0)
                    .or_insert_with(|| AppGhostList::new(cap))
                    .remember(key);
            }
        }
        self.live.on_remove(frame, key);
    }

    fn on_remove_invalidated(&mut self, frame: u32, key: u64) {
        // A coherence invalidation is not capacity pressure: re-reading
        // the block later is not evidence the partition was too small, so
        // it must not enter the refault memory the tuner reads.
        self.live.on_remove(frame, key);
    }

    fn begin_scan(&mut self) {
        self.live.begin_scan();
    }

    fn next_candidate(&mut self, filter: Option<AppId>) -> Option<u32> {
        self.live.next_candidate(filter)
    }

    fn recency_ranking(&self) -> Option<Vec<u32>> {
        self.live.recency_ranking()
    }

    fn epoch_tick(&mut self, quotas: &[(AppId, usize)]) -> Vec<QuotaUpdate> {
        // Single-instance epoch = observe, decide over this instance's own
        // ledgers with the shared rules, apply. A sharded manager runs the
        // same three steps with a merge between observe and decide.
        let obs = self.epoch_observe().expect("adaptive policies always observe");
        let live = self.cfg.candidates[self.live_idx];
        let switch_to = decide_switch(&obs.ghost_epoch, live, self.cfg.hysteresis);
        let mut updates = Vec::new();
        let mut quota_move = None;
        if self.cfg.quota_tuning {
            if let Some(mv) = decide_quota_move(
                quotas,
                &obs.refaults,
                self.capacity,
                self.cfg.quota_step,
                self.cfg.quota_floor,
            ) {
                updates.push(QuotaUpdate { app: mv.winner, quota: mv.winner_quota });
                updates.push(QuotaUpdate { app: mv.loser, quota: mv.loser_quota });
                quota_move =
                    Some((mv.loser, mv.winner, mv.frames, mv.loser_refaults, mv.winner_refaults));
            }
        }
        self.epoch_apply(&EpochDirective { switch_to, quota_move });
        updates
    }

    fn epoch_observe(&self) -> Option<EpochObservation> {
        Some(EpochObservation {
            live: Some(self.cfg.candidates[self.live_idx]),
            ghost_epoch: self
                .ghosts
                .iter()
                .map(|g| {
                    let (hits, accesses) = g.epoch_counts();
                    (g.kind(), hits, accesses)
                })
                .collect(),
            refaults: self
                .app_ghosts
                .iter()
                .map(|(&id, gl)| (AppId(id), gl.epoch_refaults))
                .collect(),
        })
    }

    fn epoch_apply(&mut self, directive: &EpochDirective) {
        self.stats.epochs += 1;
        // Time-based aging first, in the live policy and every ghost, so
        // a directed switch lands on consistently aged metadata.
        let _ = self.live.epoch_tick(&[]);
        for g in &mut self.ghosts {
            g.epoch_tick();
        }
        if let Some((to, from_rate, to_rate)) = directive.switch_to {
            if let Some(idx) = self.cfg.candidates.iter().position(|&k| k == to) {
                if idx != self.live_idx {
                    let from = self.cfg.candidates[self.live_idx];
                    self.live = kcache_policy::migrate(self.live.as_ref(), to);
                    self.live_idx = idx;
                    self.stats.switches += 1;
                    self.stats.switch_log.push(SwitchRecord {
                        epoch: self.stats.epochs,
                        from,
                        to,
                        from_rate,
                        to_rate,
                    });
                }
            }
        }
        if let Some((from, to, frames, from_refaults, to_refaults)) = directive.quota_move {
            self.stats.quota_moves += 1;
            self.stats.quota_log.push(QuotaMoveRecord {
                epoch: self.stats.epochs,
                from,
                to,
                frames,
                from_refaults,
                to_refaults,
            });
        }
        // Close the epoch: rate ledgers and refault evidence both reset
        // (lifetime counters keep accumulating).
        for g in &mut self.ghosts {
            g.end_epoch();
        }
        for gl in self.app_ghosts.values_mut() {
            gl.epoch_refaults = 0;
        }
    }

    fn adaptive_stats(&self) -> Option<AdaptiveStats> {
        let mut stats = self.stats.clone();
        stats.ghost_rates = self
            .ghosts
            .iter()
            .map(|g| {
                let (hits, misses) = g.lifetime();
                GhostRate { kind: g.kind(), hits, misses }
            })
            .collect();
        Some(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(p: &mut AdaptivePolicy, keys: &[u64], app: AppId) {
        // Simulate the manager: miss-insert unknown keys into the next
        // frame a scan would free, hit known ones.
        for &k in keys {
            let resident = p.table().resident_entries();
            if let Some(&(f, _, _)) = resident.iter().find(|&&(_, rk, _)| rk == k) {
                p.on_access(f, k, app);
            } else {
                let frame = if resident.len() < p.table().capacity() {
                    (0..p.table().capacity() as u32).find(|&f| !p.table().is_resident(f)).unwrap()
                } else {
                    p.begin_scan();
                    let v = p.next_candidate(None).unwrap();
                    let old = p.table().key_of(v);
                    p.on_remove(v, old);
                    v
                };
                p.on_insert(frame, k, app);
            }
        }
    }

    #[test]
    fn switches_to_the_better_candidate() {
        // LFU keeps a hot set under heavy skew that clock churns through.
        let mut p =
            AdaptivePolicy::new(4, AdaptiveConfig::new([PolicyKind::Clock, PolicyKind::ExactLru]));
        assert_eq!(p.kind(), PolicyKind::Clock);
        // A strict-LRU-friendly cyclic pattern over 5 keys with
        // re-references: exact LRU's ghost should outscore clock's
        // eventually on a reuse-heavy stream.
        let mut stream = Vec::new();
        for i in 0..200u64 {
            stream.push(i % 3); // tight hot set: both do well
            stream.push(3 + (i % 7)); // churn
        }
        feed(&mut p, &stream, AppId(0));
        let _ = p.epoch_tick(&[]);
        let stats = p.adaptive_stats().unwrap();
        assert_eq!(stats.epochs, 1);
        // Whatever the verdict, the ledger must be consistent.
        assert_eq!(stats.ghost_rates.len(), 2);
        for g in &stats.ghost_rates {
            assert_eq!(g.hits + g.misses, stream.len() as u64, "{:?}", g.kind);
        }
    }

    #[test]
    fn single_candidate_never_switches() {
        let mut p = AdaptivePolicy::new(8, AdaptiveConfig::new([PolicyKind::Arc]));
        feed(&mut p, &(0..100u64).map(|i| i % 13).collect::<Vec<_>>(), AppId(0));
        for _ in 0..10 {
            let updates = p.epoch_tick(&[]);
            assert!(updates.is_empty());
        }
        let stats = p.adaptive_stats().unwrap();
        assert_eq!(stats.switches, 0);
        assert_eq!(p.kind(), PolicyKind::Arc);
    }

    #[test]
    fn switch_preserves_residency() {
        let mut p = AdaptivePolicy::new(
            4,
            AdaptiveConfig {
                hysteresis: 0.0,
                ..AdaptiveConfig::new([PolicyKind::Clock, PolicyKind::ExactLru, PolicyKind::Lfu])
            },
        );
        feed(&mut p, &[1, 2, 3, 4, 1, 2, 1, 2, 5, 6, 1, 2, 7, 8, 1, 2], AppId(0));
        let before = p.table().resident_entries();
        let stats_before = p.table().stats;
        let _ = p.epoch_tick(&[]);
        assert_eq!(p.table().resident_entries(), before, "switch must not move blocks");
        assert_eq!(p.table().stats, stats_before, "switch must not reset the ledger");
    }

    #[test]
    fn tuner_moves_quota_toward_the_refaulting_app() {
        let mut p = AdaptivePolicy::new(4, AdaptiveConfig::new([PolicyKind::ExactLru]));
        let (victim, scanner) = (AppId(0), AppId(1));
        // The victim's hot keys keep getting evicted and re-referenced
        // (refaults); the scanner streams fresh keys it never revisits.
        let mut scan_key = 1000u64;
        for round in 0..50u64 {
            feed(&mut p, &[round % 2], victim);
            feed(&mut p, &[scan_key, scan_key + 1, scan_key + 2], scanner);
            scan_key += 3;
        }
        let updates = p.epoch_tick(&[(victim, 2), (scanner, 2)]);
        assert_eq!(updates.len(), 2, "tuner must move quota");
        let vu = updates.iter().find(|u| u.app == victim).unwrap();
        let su = updates.iter().find(|u| u.app == scanner).unwrap();
        assert!(vu.quota > 2, "victim quota must grow, got {}", vu.quota);
        assert!(su.quota < 2 && su.quota >= 1, "scanner quota must shrink, got {}", su.quota);
        let stats = p.adaptive_stats().unwrap();
        assert_eq!(stats.quota_moves, 1);
        assert_eq!(stats.quota_log[0].to, victim);
        assert_eq!(stats.quota_log[0].from, scanner);
    }

    #[test]
    fn duplicate_candidates_are_dropped() {
        let p = AdaptivePolicy::new(
            4,
            AdaptiveConfig::new([PolicyKind::Clock, PolicyKind::Clock, PolicyKind::Lfu]),
        );
        assert_eq!(p.candidates(), &[PolicyKind::Clock, PolicyKind::Lfu]);
        assert_eq!(p.adaptive_stats().unwrap().ghost_rates.len(), 2, "one ghost per kind");
    }

    #[test]
    fn tuner_never_pushes_a_quota_past_the_pool() {
        // The winner already holds (nearly) the whole pool: the step is
        // clamped to what the pool can honor, and when that is zero no
        // transfer is proposed at all (a half-applicable pair would leak
        // quota).
        let mut p = AdaptivePolicy::new(4, AdaptiveConfig::new([PolicyKind::ExactLru]));
        let (hot, cold) = (AppId(0), AppId(1));
        for round in 0..30u64 {
            feed(&mut p, &[round % 5], hot); // 5-key set over 4 frames: refaults
            feed(&mut p, &[100 + round], cold);
        }
        let updates = p.epoch_tick(&[(hot, 4), (cold, 3)]);
        assert!(updates.is_empty(), "winner at capacity: no transfer, got {updates:?}");
        assert_eq!(p.adaptive_stats().unwrap().quota_moves, 0);
        // One frame of headroom: the step clamps to exactly that.
        for round in 0..30u64 {
            feed(&mut p, &[round % 5], hot);
        }
        let updates = p.epoch_tick(&[(hot, 3), (cold, 3)]);
        let hu = updates.iter().find(|u| u.app == hot).unwrap();
        let cu = updates.iter().find(|u| u.app == cold).unwrap();
        assert_eq!(hu.quota, 4, "clamped to the pool");
        assert_eq!(cu.quota, 2, "loser gives exactly what the winner can take");
    }

    #[test]
    fn invalidations_do_not_count_as_refaults() {
        let mut p = AdaptivePolicy::new(4, AdaptiveConfig::new([PolicyKind::ExactLru]));
        let app = AppId(0);
        // Install a block, drop it via coherence invalidation, re-read it:
        // no refault — the partition was not too small, the block was
        // superseded.
        for round in 0..10u64 {
            feed(&mut p, &[round], app);
            let (frame, key, _) =
                *p.table().resident_entries().iter().find(|&&(_, k, _)| k == round).unwrap();
            p.on_remove_invalidated(frame, key);
            feed(&mut p, &[round], app);
        }
        let updates = p.epoch_tick(&[(app, 2), (AppId(1), 2)]);
        assert!(updates.is_empty(), "invalidation churn must not look like quota pressure");
        assert_eq!(p.adaptive_stats().unwrap().quota_moves, 0);
    }

    #[test]
    fn drained_events_feed_ghosts_like_eager_accesses() {
        // Two identical wrappers; one sees hits eagerly via on_access, the
        // other sees the same accesses as a drained batch. The ghost
        // ledgers (what the epoch controller compares) must agree.
        let mk =
            || AdaptivePolicy::new(4, AdaptiveConfig::new([PolicyKind::Clock, PolicyKind::Lfu]));
        let (mut eager, mut drained) = (mk(), mk());
        for p in [&mut eager, &mut drained] {
            for f in 0..4u32 {
                p.on_insert(f, 100 + f as u64, AppId(f % 2));
            }
        }
        let accesses = [(0u32, 100u64), (1, 101), (0, 100), (3, 103), (2, 102), (0, 100)];
        for &(f, k) in &accesses {
            eager.on_access(f, k, AppId(f % 2));
        }
        let batch: Vec<AccessEvent> =
            accesses.iter().map(|&(f, k)| AccessEvent::hit(f, k, AppId(f % 2))).collect();
        drained.drain(&batch);
        let (es, ds) = (eager.adaptive_stats().unwrap(), drained.adaptive_stats().unwrap());
        assert_eq!(es.ghost_rates, ds.ghost_rates, "ghost feeds must not depend on the path");
        // Probe hits and misses feed no ghost on either path.
        drained.drain(&[AccessEvent::probe_hit(AppId(0)), AccessEvent::miss(AppId(1))]);
        assert_eq!(
            drained.adaptive_stats().unwrap().ghost_rates,
            ds.ghost_rates,
            "lookup-only events must stay invisible to the simulators"
        );
    }

    #[test]
    fn tuner_respects_the_quota_floor() {
        // ghost_history larger than the hot working set, so every hot
        // re-reference is still remembered as a refault.
        let mut p = AdaptivePolicy::new(
            8,
            AdaptiveConfig {
                quota_floor: 3,
                ghost_history: 64,
                ..AdaptiveConfig::new([PolicyKind::ExactLru])
            },
        );
        let (hot, cold) = (AppId(0), AppId(1));
        for round in 0..60u64 {
            feed(&mut p, &[round % 12], hot); // 12-key set over 8 frames: refaults
            feed(&mut p, &[1000 + round], cold);
        }
        let updates = p.epoch_tick(&[(hot, 4), (cold, 4)]);
        let cu = updates.iter().find(|u| u.app == cold).expect("cold app shrinks");
        assert_eq!(cu.quota, 3, "shrink stops exactly at the floor");
        // At the floor already: nothing left to give, no transfer at all.
        for round in 0..60u64 {
            feed(&mut p, &[round % 12], hot);
        }
        let updates = p.epoch_tick(&[(hot, 5), (cold, 3)]);
        assert!(updates.is_empty(), "a floored quota has nothing to give: {updates:?}");
    }

    #[test]
    fn tuner_never_drains_a_quota_below_one() {
        let mut p = AdaptivePolicy::new(4, AdaptiveConfig::new([PolicyKind::ExactLru]));
        let (a, b) = (AppId(0), AppId(1));
        for round in 0..20u64 {
            feed(&mut p, &[round % 2], a);
            feed(&mut p, &[100 + round], b);
        }
        let updates = p.epoch_tick(&[(a, 3), (b, 1)]);
        assert!(updates.is_empty(), "a 1-frame quota has nothing left to give: {updates:?}");
    }
}
