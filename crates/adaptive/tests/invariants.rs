//! Property tests for the meta-policy subsystem: ghost caches are truly
//! metadata-only, epoch switches preserve residency and the ledger, and a
//! single-candidate adaptive policy is byte-for-byte the static policy.

use kcache_adaptive::{AdaptiveConfig, AdaptivePolicy, GhostCache};
use kcache_policy::{AppId, PolicyKind, ReplacementPolicy};
use proptest::prelude::*;

const CAP: usize = 8;

proptest! {
    /// Ghost ledgers never pin and never hold more frames than the pool:
    /// whatever stream a ghost replays, its simulated table stays within
    /// capacity, nothing is ever pinned, and its key map and table agree.
    #[test]
    fn ghosts_never_pin_or_overfill(
        keys in collection::vec((0u64..64, 0u32..3), 1..400),
    ) {
        for kind in PolicyKind::ALL {
            let mut g = GhostCache::new(kind, CAP);
            for &(key, app) in &keys {
                g.access(key, AppId(app));
                prop_assert!(
                    g.table().resident_count() <= CAP,
                    "{kind}: ghost grew past the pool"
                );
                for f in 0..CAP as u32 {
                    prop_assert!(!g.table().is_pinned(f), "{kind}: ghost pinned frame {f}");
                }
                prop_assert_eq!(
                    g.resident_keys().len(),
                    g.table().resident_count(),
                    "{}: ghost key map and table disagree", kind
                );
            }
            let (hits, misses) = g.lifetime();
            prop_assert_eq!(hits + misses, keys.len() as u64, "{}: accesses lost", kind);
        }
    }

    /// Epoch switches (forced with zero hysteresis over all six
    /// candidates) preserve the resident set, per-frame owners/keys, pins,
    /// and the stats/per-app ledgers — residency and charge totals cannot
    /// drift because the policy under the manager changed.
    #[test]
    fn epoch_switches_preserve_residency_and_ledger(
        ops in collection::vec((0u8..4, 0u64..256), 1..200),
    ) {
        let mut cfg = AdaptiveConfig::all_candidates();
        cfg.hysteresis = 0.0;
        let mut p = AdaptivePolicy::new(CAP, cfg);
        for (i, &(op, arg)) in ops.iter().enumerate() {
            let frame = (arg % CAP as u64) as u32;
            let app = AppId((arg % 3) as u32);
            match op {
                0 => {
                    if p.table().is_resident(frame) {
                        let key = p.table().key_of(frame);
                        p.on_access(frame, key, app);
                    } else {
                        p.on_insert(frame, arg, app);
                    }
                }
                1 => {
                    if p.table().is_resident(frame) {
                        let key = p.table().key_of(frame);
                        p.on_remove(frame, key);
                    }
                }
                2 => {
                    if p.table().is_resident(frame) {
                        let pinned = !p.table().is_pinned(frame);
                        p.set_pinned(frame, pinned);
                    }
                }
                _ => {
                    let entries = p.table().resident_entries();
                    let pins: Vec<bool> =
                        (0..CAP as u32).map(|f| p.table().is_pinned(f)).collect();
                    let stats = *p.stats();
                    let usage = p.app_usage();
                    let updates = p.epoch_tick(&[]);
                    prop_assert!(updates.is_empty(), "no quotas: no updates");
                    prop_assert_eq!(
                        p.table().resident_entries(),
                        entries,
                        "op {}: switch moved blocks", i
                    );
                    let pins_after: Vec<bool> =
                        (0..CAP as u32).map(|f| p.table().is_pinned(f)).collect();
                    prop_assert_eq!(pins_after, pins, "op {}: switch changed pins", i);
                    prop_assert_eq!(*p.stats(), stats, "op {}: switch reset stats", i);
                    prop_assert_eq!(p.app_usage(), usage, "op {}: switch reset app ledger", i);
                }
            }
        }
    }

    /// With a single candidate the adaptive wrapper is transparent: every
    /// observable — candidate sequences, table state, stats — matches the
    /// bare static policy exactly, epoch ticks included.
    #[test]
    fn single_candidate_is_byte_for_byte_static(
        ops in collection::vec((0u8..5, 0u64..256), 1..250),
    ) {
        for kind in PolicyKind::ALL {
            let mut adaptive = AdaptivePolicy::new(CAP, AdaptiveConfig::new([kind]));
            let mut stat = kind.build(CAP);
            for &(op, arg) in &ops {
                let frame = (arg % CAP as u64) as u32;
                let app = AppId((arg % 3) as u32);
                match op {
                    0 => {
                        if stat.table().is_resident(frame) {
                            let key = stat.table().key_of(frame);
                            adaptive.on_access(frame, key, app);
                            stat.on_access(frame, key, app);
                        } else {
                            adaptive.on_insert(frame, arg, app);
                            stat.on_insert(frame, arg, app);
                        }
                    }
                    1 => {
                        if stat.table().is_resident(frame) {
                            let key = stat.table().key_of(frame);
                            adaptive.on_remove(frame, key);
                            stat.on_remove(frame, key);
                        }
                    }
                    2 => {
                        if stat.table().is_resident(frame) {
                            let pinned = !stat.table().is_pinned(frame);
                            adaptive.set_pinned(frame, pinned);
                            stat.set_pinned(frame, pinned);
                        }
                    }
                    3 => {
                        let _ = adaptive.epoch_tick(&[]);
                        let _ = stat.epoch_tick(&[]);
                    }
                    _ => {
                        adaptive.begin_scan();
                        stat.begin_scan();
                        let a = adaptive.next_candidate(None);
                        let s = stat.next_candidate(None);
                        prop_assert_eq!(a, s, "{}: scan diverged", kind);
                        if let Some(v) = s {
                            // The manager takes the first workable victim.
                            let key = stat.table().key_of(v);
                            adaptive.on_remove(v, key);
                            stat.on_remove(v, key);
                        }
                    }
                }
                prop_assert_eq!(adaptive.kind(), kind);
                prop_assert_eq!(
                    adaptive.table().resident_entries(),
                    stat.table().resident_entries(),
                    "{}: table diverged", kind
                );
                prop_assert_eq!(*adaptive.stats(), *stat.stats(), "{}: stats diverged", kind);
            }
        }
    }
}
