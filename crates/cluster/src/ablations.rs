//! Ablations of the paper's design decisions (§3.2), each regenerable as a
//! figure-style table.

use crate::builder::ClusterSpec;
use crate::experiment::run_experiment;
use crate::figures::Grid;
use crate::report::FigureData;
use crate::sweep::parallel_map;
use kcache::{
    AdaptiveConfig, CacheConfig, CooperativeConfig, DirectoryMode, EvictPolicy, PartitionConfig,
    PartitionMode, PolicyKind,
};
use sim_core::Dur;
use sim_net::{NetConfig, NodeId};
use workload::{AppSpec, Mode, PhaseSpec};

fn app(grid: &Grid, d: u32, p: u32, mode: Mode, l: f64, s: f64, name: &str) -> AppSpec {
    AppSpec {
        name: name.into(),
        nodes: (0..p as u16).map(NodeId).collect(),
        total_bytes: grid.total_bytes,
        request_size: d,
        mode,
        locality: l,
        sharing: s,
        hotspot: 0.0,
        shared_file: "shared".into(),
        file_size: grid.file_size,
        start_delay: Dur::ZERO,
        min_requests: 1,
        phases: Vec::new(),
    }
}

fn makespans(
    grid: &Grid,
    configs: Vec<(Option<CacheConfig>, Vec<AppSpec>, Option<NetConfig>)>,
) -> Vec<f64> {
    parallel_map(configs, |(cache, apps, net)| {
        let mut spec = ClusterSpec::paper(cache.clone());
        if let Some(net) = net {
            spec.net = net.clone();
        }
        spec.seed = grid.seed;
        let r = run_experiment(&spec, apps);
        assert!(r.completed && r.total_verify_failures() == 0);
        r.mean_makespan_s()
    })
}

/// Write-behind vs write-through vs no cache (the flusher's justification).
pub fn ablation_write_policy(grid: &Grid) -> FigureData {
    let mut configs = Vec::new();
    for &d in &grid.d_values {
        let apps = vec![app(grid, d, 4, Mode::Write, 0.0, 0.0, "app0")];
        configs.push((Some(CacheConfig::paper()), apps.clone(), None));
        let wt = CacheConfig { write_behind: false, ..CacheConfig::paper() };
        configs.push((Some(wt), apps.clone(), None));
        configs.push((None, apps, None));
    }
    let vals = makespans(grid, configs);
    let mut fig = FigureData::new(
        "ablation_write_policy",
        "write-behind vs write-through (writes, p=4, l=0)",
        "request size d (bytes)",
        "total time (s)",
        vec!["write-behind".into(), "write-through".into(), "no caching".into()],
    );
    for (i, &d) in grid.d_values.iter().enumerate() {
        fig.push(d as f64, vec![vals[3 * i], vals[3 * i + 1], vals[3 * i + 2]]);
    }
    fig
}

/// Approximate (clock) vs exact LRU: end-to-end effect on a localized read
/// workload. (The paper's argument — per-access CPU overhead of exact LRU —
/// is quantified by the `buffer_manager` Criterion bench.)
pub fn ablation_lru(grid: &Grid) -> FigureData {
    let mut configs = Vec::new();
    for &d in &grid.d_values {
        let apps = vec![app(grid, d, 4, Mode::Read, 0.8, 0.0, "app0")];
        let clock =
            CacheConfig { policy: EvictPolicy::of(PolicyKind::Clock), ..CacheConfig::paper() };
        let exact =
            CacheConfig { policy: EvictPolicy::of(PolicyKind::ExactLru), ..CacheConfig::paper() };
        configs.push((Some(clock), apps.clone(), None));
        configs.push((Some(exact), apps, None));
    }
    let vals = makespans(grid, configs);
    let mut fig = FigureData::new(
        "ablation_lru",
        "approximate (clock) vs exact LRU (reads, p=4, l=0.8)",
        "request size d (bytes)",
        "total time (s)",
        vec!["clock (approximate)".into(), "exact LRU".into()],
    );
    for (i, &d) in grid.d_values.iter().enumerate() {
        fig.push(d as f64, vec![vals[2 * i], vals[2 * i + 1]]);
    }
    fig
}

/// Clean-first eviction preference on a mixed read+write co-schedule.
pub fn ablation_clean_first(grid: &Grid) -> FigureData {
    let mut configs = Vec::new();
    for &d in &grid.d_values {
        let apps = vec![
            app(grid, d, 4, Mode::Read, 0.5, 0.5, "appA"),
            app(grid, d, 4, Mode::Write, 0.5, 0.5, "appB"),
        ];
        let clean = CacheConfig {
            policy: EvictPolicy { kind: PolicyKind::Clock, clean_first: true },
            ..CacheConfig::paper()
        };
        let oblivious = CacheConfig {
            policy: EvictPolicy { kind: PolicyKind::Clock, clean_first: false },
            ..CacheConfig::paper()
        };
        configs.push((Some(clean), apps.clone(), None));
        configs.push((Some(oblivious), apps, None));
    }
    let vals = makespans(grid, configs);
    let mut fig = FigureData::new(
        "ablation_clean_first",
        "clean-first vs oblivious eviction (read+write instances, p=4)",
        "request size d (bytes)",
        "total time (s)",
        vec!["clean-first".into(), "oblivious".into()],
    );
    for (i, &d) in grid.d_values.iter().enumerate() {
        fig.push(d as f64, vec![vals[2 * i], vals[2 * i + 1]]);
    }
    fig
}

/// Shared hub (the paper's platform) vs a store-and-forward switch.
pub fn ablation_fabric(grid: &Grid) -> FigureData {
    let mut configs = Vec::new();
    for &d in &grid.d_values {
        let apps = vec![
            app(grid, d, 4, Mode::Read, 0.5, 0.5, "appA"),
            app(grid, d, 4, Mode::Read, 0.5, 0.5, "appB"),
        ];
        for net in [NetConfig::hub_100mbps(), NetConfig::switch_100mbps()] {
            for cache in [Some(CacheConfig::paper()), None] {
                configs.push((cache, apps.clone(), Some(net.clone())));
            }
        }
    }
    let vals = makespans(grid, configs);
    let mut fig = FigureData::new(
        "ablation_fabric",
        "hub vs switch (two read instances, p=4, l=0.5, s=50%)",
        "request size d (bytes)",
        "total time (s)",
        vec![
            "hub + caching".into(),
            "hub, no caching".into(),
            "switch + caching".into(),
            "switch, no caching".into(),
        ],
    );
    for (i, &d) in grid.d_values.iter().enumerate() {
        fig.push(d as f64, (0..4).map(|k| vals[4 * i + k]).collect());
    }
    fig
}

/// Coherent sync-writes vs plain write-behind under full sharing.
pub fn ablation_sync_write(grid: &Grid) -> FigureData {
    let mut configs = Vec::new();
    for &d in &grid.d_values {
        for mode in [Mode::Write, Mode::SyncWrite] {
            let apps = vec![
                app(grid, d, 2, mode, 0.5, 1.0, "appA"),
                app(grid, d, 2, mode, 0.5, 1.0, "appB"),
            ];
            configs.push((Some(CacheConfig::paper()), apps, None));
        }
    }
    let vals = makespans(grid, configs);
    let mut fig = FigureData::new(
        "ablation_sync_write",
        "write-behind vs coherent sync-write (two instances, s=100%)",
        "request size d (bytes)",
        "total time (s)",
        vec!["write-behind".into(), "sync-write".into()],
    );
    for (i, &d) in grid.d_values.iter().enumerate() {
        fig.push(d as f64, vec![vals[2 * i], vals[2 * i + 1]]);
    }
    fig
}

/// Harvester watermark sensitivity on a write-heavy workload.
pub fn ablation_harvester(grid: &Grid) -> FigureData {
    let marks = [(1usize, 4usize), (30, 75), (120, 200)];
    let mut configs = Vec::new();
    for &d in &grid.d_values {
        let apps = vec![app(grid, d, 4, Mode::Write, 0.3, 0.0, "app0")];
        for (lo, hi) in marks {
            let cfg = CacheConfig { low_watermark: lo, high_watermark: hi, ..CacheConfig::paper() };
            configs.push((Some(cfg), apps.clone(), None));
        }
    }
    let vals = makespans(grid, configs);
    let mut fig = FigureData::new(
        "ablation_harvester",
        "harvester watermarks (writes, p=4, l=0.3)",
        "request size d (bytes)",
        "total time (s)",
        vec!["low=1/high=4".into(), "low=30/high=75 (paper)".into(), "low=120/high=200".into()],
    );
    for (i, &d) in grid.d_values.iter().enumerate() {
        fig.push(d as f64, (0..3).map(|k| vals[3 * i + k]).collect());
    }
    fig
}

/// Extension: cache-size sensitivity (the paper fixes 1.2 MB; §5 motivates
/// exploring more).
pub fn ablation_cache_size(grid: &Grid) -> FigureData {
    let sizes = [75usize, 150, 300, 600, 1200];
    let d = *grid.d_values.iter().find(|&&d| d >= 64 << 10).unwrap_or(&grid.d_values[0]);
    let mut configs = Vec::new();
    for &cap in &sizes {
        let apps = vec![
            app(grid, d, 4, Mode::Read, 0.5, 0.5, "appA"),
            app(grid, d, 4, Mode::Read, 0.5, 0.5, "appB"),
        ];
        let cfg = CacheConfig {
            capacity_blocks: cap,
            low_watermark: cap / 10,
            high_watermark: cap / 4,
            ..CacheConfig::paper()
        };
        configs.push((Some(cfg), apps, None));
    }
    let vals = makespans(grid, configs);
    let mut fig = FigureData::new(
        "ablation_cache_size",
        format!("cache size sweep (two read instances, d={d}, l=0.5, s=50%)"),
        "cache capacity (blocks)",
        "total time (s)",
        vec!["caching".into()],
    );
    for (i, &cap) in sizes.iter().enumerate() {
        fig.push(cap as f64, vec![vals[i]]);
    }
    fig
}

/// New-subsystem ablation: every replacement policy across sharing
/// degrees, under a Zipf-skewed two-instance read co-schedule. Reported
/// metric is the **cache hit ratio** — the policies' actual lever — rather
/// than makespan, so the figure isolates eviction quality from everything
/// downstream.
pub fn ablation_policy_comparison(grid: &Grid) -> FigureData {
    let sharings = [0.0, 0.25, 0.5, 0.75, 1.0];
    let d = *grid.d_values.iter().find(|&&d| d >= 64 << 10).unwrap_or(&grid.d_values[0]);
    let mut configs = Vec::new();
    for &s in &sharings {
        for kind in PolicyKind::ALL {
            let mut a = app(grid, d, 4, Mode::Read, 0.2, s, "appA");
            let mut b = app(grid, d, 4, Mode::Read, 0.2, s, "appB");
            a.hotspot = 0.9;
            b.hotspot = 0.9;
            // Enough requests that steady-state behavior dominates the
            // cold-start misses even on the smoke grid.
            a.min_requests = 64;
            b.min_requests = 64;
            let cfg = CacheConfig { policy: EvictPolicy::of(kind), ..CacheConfig::paper() };
            configs.push((cfg, vec![a, b]));
        }
    }
    let vals = parallel_map(configs, |(cache, apps)| {
        let mut spec = ClusterSpec::paper(Some(cache.clone()));
        spec.seed = grid.seed;
        let r = run_experiment(&spec, apps);
        assert!(r.completed && r.total_verify_failures() == 0);
        r.hit_ratio().unwrap_or(0.0)
    });
    let mut fig = FigureData::new(
        "ablation_policy",
        format!(
            "replacement policies vs sharing degree (two read instances, d={d}, l=0.2, zipf 0.9)"
        ),
        "sharing degree s (%)",
        "cache hit ratio",
        PolicyKind::ALL.iter().map(|k| k.name().to_string()).collect(),
    );
    let n = PolicyKind::ALL.len();
    for (i, &s) in sharings.iter().enumerate() {
        fig.push(s * 100.0, (0..n).map(|k| vals[n * i + k]).collect());
    }
    fig
}

/// New-subsystem ablation: per-application frame quotas under an
/// adversarial co-schedule. A reuse-heavy **victim** (Zipf hot set over
/// its private partition) shares node 0's cache with a sequential
/// **scanner** that streams fresh blocks and would, in a shared pool,
/// flush the victim's hot set. The x axis sweeps the victim's quota
/// share; series compare the shared pool against strict quotas and soft
/// quotas with borrowing. Reported metric is the **victim's own hit
/// ratio** (per-app attribution from the partitioning subsystem) — the
/// isolation the quotas are supposed to buy.
pub fn ablation_partitioning(grid: &Grid) -> FigureData {
    let d = *grid.d_values.iter().find(|&&d| d >= 64 << 10).unwrap_or(&grid.d_values[0]);
    let capacity = CacheConfig::paper().capacity_blocks;
    let victim_quotas = [capacity / 5, capacity / 2, capacity * 4 / 5];
    let modes = [PartitionMode::Shared, PartitionMode::Strict, PartitionMode::Soft];
    let mut configs = Vec::new();
    for &vq in &victim_quotas {
        for mode in modes {
            let mut victim = app(grid, d, 1, Mode::Read, 0.2, 0.0, "victim");
            victim.hotspot = 1.1;
            victim.min_requests = 96;
            let mut scanner = app(grid, d, 1, Mode::Read, 0.0, 0.0, "scanner");
            scanner.min_requests = 160;
            let cfg = CacheConfig {
                partitioning: PartitionConfig {
                    mode,
                    quotas: [(0u32, vq), (1u32, capacity - vq)].into_iter().collect(),
                },
                ..CacheConfig::paper()
            };
            configs.push((cfg, vec![victim, scanner]));
        }
    }
    let vals = parallel_map(configs, |(cache, apps)| {
        let mut spec = ClusterSpec::paper(Some(cache.clone()));
        spec.seed = grid.seed;
        let r = run_experiment(&spec, apps);
        assert!(r.completed && r.total_verify_failures() == 0);
        r.app_hit_ratio(0).unwrap_or(0.0)
    });
    let mut fig = FigureData::new(
        "ablation_partitioning",
        format!("per-app quotas vs shared pool (victim zipf 1.1 + scanner, d={d})"),
        "victim quota (frames)",
        "victim hit ratio",
        modes.iter().map(|m| m.name().to_string()).collect(),
    );
    for (i, &vq) in victim_quotas.iter().enumerate() {
        fig.push(vq as f64, (0..modes.len()).map(|k| vals[modes.len() * i + k]).collect());
    }
    fig
}

/// The adaptive subsystem's candidate set for the ablation: one
/// recency-style policy, one frequency-style policy, and the paper's
/// sharing signal — three regimes a phase schedule can alternate between.
const ADAPTIVE_CANDIDATES: [PolicyKind; 3] =
    [PolicyKind::Clock, PolicyKind::Lfu, PolicyKind::SharingAware];

/// A phase-shifting two-instance co-schedule on one cache node. `offset`
/// rotates instance B's schedule so the "mixed" scenario runs the two
/// instances in *anti-phase* — at any moment the node sees two different
/// regimes at once and no static policy is right for long.
fn phase_apps(grid: &Grid, d: u32, offset: bool) -> Vec<AppSpec> {
    // Phases sized so several epochs fit inside each phase.
    let zipf = PhaseSpec { requests: 48, locality: 0.2, sharing: 0.0, hotspot: 1.2 };
    let scan = PhaseSpec { requests: 48, locality: 0.0, sharing: 0.0, hotspot: 0.0 };
    let shared = PhaseSpec { requests: 48, locality: 0.2, sharing: 1.0, hotspot: 0.9 };
    let mut a = app(grid, d, 1, Mode::Read, 0.2, 0.0, "appA");
    let mut b = app(grid, d, 1, Mode::Read, 0.2, 0.0, "appB");
    a.min_requests = 288;
    b.min_requests = 288;
    a.phases = vec![zipf, scan, shared];
    b.phases = if offset { vec![scan, shared, zipf] } else { vec![zipf, scan, shared] };
    vec![a, b]
}

fn adaptive_cache(epoch: usize) -> CacheConfig {
    CacheConfig {
        policy: EvictPolicy::of(ADAPTIVE_CANDIDATES[0]),
        adaptive: Some(AdaptiveConfig {
            hysteresis: 0.01,
            ..AdaptiveConfig::new(ADAPTIVE_CANDIDATES)
        }),
        epoch_accesses: epoch,
        ..CacheConfig::paper()
    }
}

/// New-subsystem ablation (kcache-adaptive): the meta-policy against every
/// static candidate on phase-shifting workloads. Row `x = 0` runs both
/// instances through the same zipf → scan → shared cycle; row `x = 1`
/// runs them in anti-phase (the "mixed schedule" — the node never sees a
/// single regime). Metric is the cache hit ratio. The acceptance bar:
/// adaptive tracks the best static policy within 3 points and strictly
/// beats the worst on both rows.
pub fn ablation_adaptive_switching(grid: &Grid) -> FigureData {
    let d = *grid.d_values.iter().find(|&&d| d >= 64 << 10).unwrap_or(&grid.d_values[0]);
    let epoch = 256;
    let mut configs = Vec::new();
    for &offset in &[false, true] {
        let apps = phase_apps(grid, d, offset);
        configs.push((adaptive_cache(epoch), apps.clone()));
        for kind in ADAPTIVE_CANDIDATES {
            // Statics run with the same epoch clock (SharingAware decay
            // ticks equally) so only the meta-control differs.
            let cfg = CacheConfig {
                policy: EvictPolicy::of(kind),
                epoch_accesses: epoch,
                ..CacheConfig::paper()
            };
            configs.push((cfg, apps.clone()));
        }
    }
    let vals = parallel_map(configs, |(cache, apps)| {
        let mut spec = ClusterSpec::paper(Some(cache.clone()));
        spec.seed = grid.seed;
        let r = run_experiment(&spec, apps);
        assert!(r.completed && r.total_verify_failures() == 0);
        r.hit_ratio().unwrap_or(0.0)
    });
    let mut series = vec!["adaptive".to_string()];
    series.extend(ADAPTIVE_CANDIDATES.iter().map(|k| k.name().to_string()));
    let n = series.len();
    let mut fig = FigureData::new(
        "ablation_adaptive",
        format!("adaptive meta-policy vs static candidates on phase-shifting workloads (d={d})"),
        "scenario (0 = in-phase cycle, 1 = anti-phase mix)",
        "cache hit ratio",
        series,
    );
    for (i, _) in [false, true].iter().enumerate() {
        fig.push(i as f64, (0..n).map(|k| vals[n * i + k]).collect());
    }
    fig
}

/// New-subsystem ablation (kcache-adaptive): online quota tuning. A
/// misconfigured strict partition starves a zipf victim (60 frames)
/// while a sequential scanner idles on 240; the tuner, fed by per-app
/// ghost-list refaults, must walk quota back to the victim. Series
/// compare the fixed misconfiguration against the tuned run (same
/// replacement policy — a single-candidate adaptive wrapper — so the
/// tuner is the *only* difference). Rows: 0 = aggregate hit ratio, 1 =
/// victim hit ratio, 2 = victim final quota share, 3 = scanner final
/// quota share.
pub fn ablation_adaptive_quota(grid: &Grid) -> FigureData {
    let d = *grid.d_values.iter().find(|&&d| d >= 64 << 10).unwrap_or(&grid.d_values[0]);
    let capacity = CacheConfig::paper().capacity_blocks;
    let quotas: PartitionConfig =
        PartitionConfig::strict([(0u32, capacity / 5), (1u32, capacity * 4 / 5)]);
    let mk_apps = || {
        let mut victim = app(grid, d, 1, Mode::Read, 0.2, 0.0, "victim");
        victim.hotspot = 1.1;
        victim.min_requests = 96;
        let mut scanner = app(grid, d, 1, Mode::Read, 0.0, 0.0, "scanner");
        scanner.min_requests = 160;
        vec![victim, scanner]
    };
    let fixed = CacheConfig { partitioning: quotas.clone(), ..CacheConfig::paper() };
    let tuned = CacheConfig {
        partitioning: quotas,
        adaptive: Some(AdaptiveConfig {
            quota_step: 16,
            ..AdaptiveConfig::new([PolicyKind::Clock])
        }),
        epoch_accesses: 128,
        ..CacheConfig::paper()
    };
    let configs = vec![(fixed, mk_apps()), (tuned, mk_apps())];
    let vals = parallel_map(configs, |(cache, apps)| {
        let mut spec = ClusterSpec::paper(Some(cache.clone()));
        spec.seed = grid.seed;
        let r = run_experiment(&spec, apps);
        assert!(r.completed && r.total_verify_failures() == 0);
        let usage = r.app_usage.as_deref().unwrap_or_default();
        let quota_share = |app: u32| {
            usage.iter().find(|u| u.app == app).map(|u| u.quota as f64).unwrap_or(0.0)
                / CacheConfig::paper().capacity_blocks as f64
        };
        vec![
            r.hit_ratio().unwrap_or(0.0),
            r.app_hit_ratio(0).unwrap_or(0.0),
            quota_share(0),
            quota_share(1),
        ]
    });
    let mut fig = FigureData::new(
        "ablation_adaptive_quota",
        format!("online quota tuning vs fixed misconfigured quotas (victim zipf 1.1 + scanner, d={d})"),
        "metric (0 = aggregate hit ratio, 1 = victim hit ratio, 2 = victim quota share, 3 = scanner quota share)",
        "value",
        vec!["fixed".into(), "tuned".into()],
    );
    for (metric, (f, t)) in vals[0].iter().zip(&vals[1]).enumerate() {
        fig.push(metric as f64, vec![*f, *t]);
    }
    fig
}

/// Both adaptive figures (the `--fig adaptive` bundle).
pub fn ablation_adaptive(grid: &Grid) -> Vec<FigureData> {
    vec![ablation_adaptive_switching(grid), ablation_adaptive_quota(grid)]
}

fn coop_cache(directory: DirectoryMode, singleton_preserving: bool) -> CacheConfig {
    CacheConfig {
        cooperative: Some(CooperativeConfig { directory, singleton_preserving }),
        ..CacheConfig::paper()
    }
}

/// Two skewed read instances striped across the four client nodes — in
/// *opposite* orders, so partition `k` of the shared file is read by
/// instance A on node `k` and by instance B on node `3-k`. That puts the
/// sharing-degree overlap on *different* nodes (the paper's default
/// striping co-locates both instances' partition-`k` processes, which a
/// node-local cache already covers) — the regime where only a remote-hit
/// tier can turn the second copy's misses into cache traffic.
fn coop_apps(grid: &Grid, d: u32, s: f64) -> Vec<AppSpec> {
    let mut a = app(grid, d, 4, Mode::Read, 0.2, s, "appA");
    let mut b = app(grid, d, 4, Mode::Read, 0.2, s, "appB");
    b.nodes.reverse();
    a.hotspot = 0.9;
    b.hotspot = 0.9;
    a.min_requests = 64;
    b.min_requests = 64;
    vec![a, b]
}

/// Tentpole ablation, part (a): the cooperative remote-hit tier against
/// the node-local baseline across sharing degrees. Metric is the
/// **aggregate** hit ratio — local hits plus blocks a peer cache served —
/// so the figure measures what the cluster's caches absorbed, not just
/// one node's. Series cover both directory modes and the naive
/// (duplicate-oblivious) eviction variant.
pub fn ablation_cooperative_hit_ratio(grid: &Grid) -> FigureData {
    let sharings = [0.0, 0.25, 0.5, 0.75, 1.0];
    let d = *grid.d_values.iter().find(|&&d| d >= 64 << 10).unwrap_or(&grid.d_values[0]);
    let variants = [
        CacheConfig::paper(),
        coop_cache(DirectoryMode::Authoritative, true),
        coop_cache(DirectoryMode::Hint, true),
        coop_cache(DirectoryMode::Authoritative, false),
    ];
    let mut configs = Vec::new();
    for &s in &sharings {
        for cfg in &variants {
            configs.push((cfg.clone(), coop_apps(grid, d, s)));
        }
    }
    let vals = parallel_map(configs, |(cache, apps)| {
        let mut spec = ClusterSpec::paper(Some(cache.clone()));
        spec.seed = grid.seed;
        let r = run_experiment(&spec, apps);
        assert!(r.completed && r.total_verify_failures() == 0);
        r.aggregate_hit_ratio().unwrap_or(0.0)
    });
    let mut fig = FigureData::new(
        "ablation_cooperative",
        format!("cooperative caching vs node-local baseline (two read instances, d={d}, zipf 0.9)"),
        "sharing degree s (%)",
        "aggregate (local+remote) hit ratio",
        vec![
            "local-only".into(),
            "coop authoritative".into(),
            "coop hint".into(),
            "coop naive-eviction".into(),
        ],
    );
    let n = variants.len();
    for (i, &s) in sharings.iter().enumerate() {
        fig.push(s * 100.0, (0..n).map(|k| vals[n * i + k]).collect());
    }
    fig
}

/// Tentpole ablation, part (b): what a remote hit costs versus a disk
/// fetch, under both fabric models. Runs with `preload_warm = false` so
/// iod reads pay real disk latency, full sharing so the peer tier sees
/// traffic, and the grid's *smallest* request size: scattered small
/// reads pay a disk seek per request, which is the cost a remote hit's
/// network round trip undercuts. (At large request sizes the iod
/// amortizes one seek over a long coalesced read and wire transfer
/// dominates both tiers equally — there a remote hit merely breaks
/// even, which is why this figure isolates the small-read regime.)
/// Rows are fabrics (0 = hub, 1 = switch); values are mean per-block
/// fetch latency in milliseconds by tier.
pub fn ablation_cooperative_latency(grid: &Grid) -> FigureData {
    let d = *grid.d_values.iter().min().expect("non-empty grid");
    let nets = [NetConfig::hub_100mbps(), NetConfig::switch_100mbps()];
    let configs: Vec<(NetConfig, Vec<AppSpec>)> =
        nets.iter().map(|net| (net.clone(), coop_apps(grid, d, 1.0))).collect();
    let vals = parallel_map(configs, |(net, apps)| {
        let mut spec = ClusterSpec::paper(Some(coop_cache(DirectoryMode::Authoritative, true)));
        spec.net = net.clone();
        spec.seed = grid.seed;
        spec.preload_warm = false;
        let r = run_experiment(&spec, apps);
        assert!(r.completed && r.total_verify_failures() == 0);
        vec![r.mean_remote_fetch_ms().unwrap_or(0.0), r.mean_disk_fetch_ms().unwrap_or(0.0)]
    });
    let mut fig = FigureData::new(
        "ablation_cooperative_latency",
        format!("remote-hit vs disk fetch latency (cold disks, s=100%, d={d})"),
        "fabric (0 = hub, 1 = switch)",
        "mean block fetch latency (ms)",
        vec!["remote fetch (ms)".into(), "disk fetch (ms)".into()],
    );
    for (i, v) in vals.into_iter().enumerate() {
        fig.push(i as f64, v);
    }
    fig
}

/// Tentpole ablation, part (c): what singleton-preserving eviction buys.
/// Both runs use the authoritative directory; only the eviction
/// preference differs. Rows are end-of-run cluster residency metrics
/// (0 = distinct blocks cached anywhere, 1 = total resident copies) —
/// preferring duplicates for eviction should leave the cluster covering
/// **more distinct data** with the same aggregate capacity.
pub fn ablation_cooperative_residency(grid: &Grid) -> FigureData {
    let d = *grid.d_values.iter().find(|&&d| d >= 64 << 10).unwrap_or(&grid.d_values[0]);
    let configs = vec![
        (coop_cache(DirectoryMode::Authoritative, true), coop_apps(grid, d, 0.5)),
        (coop_cache(DirectoryMode::Authoritative, false), coop_apps(grid, d, 0.5)),
    ];
    let vals = parallel_map(configs, |(cache, apps)| {
        let mut spec = ClusterSpec::paper(Some(cache.clone()));
        spec.seed = grid.seed;
        let r = run_experiment(&spec, apps);
        assert!(r.completed && r.total_verify_failures() == 0);
        vec![r.distinct_resident_blocks as f64, r.resident_block_copies as f64]
    });
    let mut fig = FigureData::new(
        "ablation_cooperative_residency",
        format!("singleton-preserving vs naive cooperative eviction (s=50%, d={d})"),
        "metric (0 = distinct resident blocks, 1 = resident copies)",
        "blocks",
        vec!["singleton-preserving".into(), "naive".into()],
    );
    for (metric, (&singleton, &naive)) in vals[0].iter().zip(&vals[1]).enumerate() {
        fig.push(metric as f64, vec![singleton, naive]);
    }
    fig
}

/// All three cooperative-caching figures (the `--fig cooperative` bundle).
pub fn ablation_cooperative(grid: &Grid) -> Vec<FigureData> {
    vec![
        ablation_cooperative_hit_ratio(grid),
        ablation_cooperative_latency(grid),
        ablation_cooperative_residency(grid),
    ]
}

/// The full-grid policy-comparison study: every policy across **capacity ×
/// hotspot × sharing** (the DESIGN.md table). One figure per (capacity,
/// hotspot) pair, sharing on the x axis — `figures --fig policy-grid
/// --full` regenerates the published table.
pub fn ablation_policy_grid(grid: &Grid) -> Vec<FigureData> {
    let capacities = [150usize, 300, 600];
    let hotspots = [0.6, 0.9, 1.2];
    let sharings = [0.0, 0.5, 1.0];
    let d = *grid.d_values.iter().find(|&&d| d >= 64 << 10).unwrap_or(&grid.d_values[0]);
    let mut figs = Vec::new();
    for &cap in &capacities {
        for &h in &hotspots {
            let mut configs = Vec::new();
            for &s in &sharings {
                for kind in PolicyKind::ALL {
                    let mut a = app(grid, d, 4, Mode::Read, 0.2, s, "appA");
                    let mut b = app(grid, d, 4, Mode::Read, 0.2, s, "appB");
                    a.hotspot = h;
                    b.hotspot = h;
                    a.min_requests = 64;
                    b.min_requests = 64;
                    let cfg = CacheConfig {
                        capacity_blocks: cap,
                        low_watermark: cap / 10,
                        high_watermark: cap / 4,
                        policy: EvictPolicy::of(kind),
                        ..CacheConfig::paper()
                    };
                    configs.push((cfg, vec![a, b]));
                }
            }
            let vals = parallel_map(configs, |(cache, apps)| {
                let mut spec = ClusterSpec::paper(Some(cache.clone()));
                spec.seed = grid.seed;
                let r = run_experiment(&spec, apps);
                assert!(r.completed && r.total_verify_failures() == 0);
                r.hit_ratio().unwrap_or(0.0)
            });
            let mut fig = FigureData::new(
                format!("ablation_policy_grid_c{cap}_h{}", (h * 10.0) as u32),
                format!("policies vs sharing (capacity={cap} blocks, zipf {h}, d={d}, l=0.2)"),
                "sharing degree s (%)",
                "cache hit ratio",
                PolicyKind::ALL.iter().map(|k| k.name().to_string()).collect(),
            );
            let n = PolicyKind::ALL.len();
            for (i, &s) in sharings.iter().enumerate() {
                fig.push(s * 100.0, (0..n).map(|k| vals[n * i + k]).collect());
            }
            figs.push(fig);
        }
    }
    figs
}

/// All ablations.
pub fn all_ablations(grid: &Grid) -> Vec<FigureData> {
    vec![
        ablation_write_policy(grid),
        ablation_lru(grid),
        ablation_clean_first(grid),
        ablation_fabric(grid),
        ablation_sync_write(grid),
        ablation_harvester(grid),
        ablation_cache_size(grid),
        ablation_policy_comparison(grid),
        ablation_partitioning(grid),
    ]
    .into_iter()
    .chain(ablation_adaptive(grid))
    .chain(ablation_cooperative(grid))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance bar for the adaptive subsystem, part (a): on
    /// phase-shifting workloads the meta-policy tracks the best static
    /// candidate within 3 points and strictly beats the worst; on the
    /// anti-phase mixed schedule — where no static policy is right for
    /// long — it beats *every* static candidate outright.
    #[test]
    fn adaptive_tracks_best_static_and_beats_worst() {
        let fig = ablation_adaptive_switching(&Grid::smoke());
        let adaptive = fig.column("adaptive").unwrap();
        let statics: Vec<Vec<f64>> =
            ADAPTIVE_CANDIDATES.iter().map(|k| fig.column(k.name()).unwrap()).collect();
        for (row, &a) in adaptive.iter().enumerate() {
            let best = statics.iter().map(|c| c[row]).fold(f64::MIN, f64::max);
            let worst = statics.iter().map(|c| c[row]).fold(f64::MAX, f64::min);
            assert!(
                a >= best - 0.03,
                "row {row}: adaptive {a} not within 3 points of best static {best}"
            );
            assert!(a > worst, "row {row}: adaptive {a} does not beat worst static {worst}");
        }
        // Row 1 is the mixed (anti-phase) schedule: adaptive must win.
        let best_mixed = statics.iter().map(|c| c[1]).fold(f64::MIN, f64::max);
        assert!(
            adaptive[1] > best_mixed,
            "mixed schedule: adaptive {} must beat every static (best {})",
            adaptive[1],
            best_mixed
        );
    }

    /// Acceptance part (c): the quota tuner converges — the zipf victim's
    /// tuned quota ends higher than the scanner's, and aggregate hit rate
    /// is at least the fixed-quota run's.
    #[test]
    fn adaptive_quota_tuner_converges() {
        let fig = ablation_adaptive_quota(&Grid::smoke());
        let fixed = fig.column("fixed").unwrap();
        let tuned = fig.column("tuned").unwrap();
        // Row 0: aggregate hit ratio; rows 2/3: final quota shares.
        assert!(
            tuned[0] >= fixed[0],
            "tuned aggregate hit ratio {} fell below the fixed run {}",
            tuned[0],
            fixed[0]
        );
        assert!(
            tuned[2] > tuned[3],
            "victim tuned quota share {} must exceed the scanner's {}",
            tuned[2],
            tuned[3]
        );
        assert!(
            tuned[1] > fixed[1],
            "tuning must lift the starved victim's hit ratio ({} vs {})",
            tuned[1],
            fixed[1]
        );
        // The fixed run's shares echo the misconfiguration.
        assert!((fixed[2] - 0.2).abs() < 1e-9 && (fixed[3] - 0.8).abs() < 1e-9);
    }

    /// The acceptance bar for the cooperative tier, part (a): once real
    /// sharing exists (`s ≥ 0.5`), the aggregate (local + remote) hit
    /// ratio must strictly beat the node-local baseline — in both
    /// directory modes. At `s = 0` nothing is shareable, so the
    /// cooperative runs must at least not regress.
    #[test]
    fn cooperative_lifts_aggregate_hit_ratio_when_sharing() {
        let fig = ablation_cooperative_hit_ratio(&Grid::smoke());
        let local = fig.column("local-only").unwrap();
        let auth = fig.column("coop authoritative").unwrap();
        let hint = fig.column("coop hint").unwrap();
        for (i, row) in fig.rows.iter().enumerate() {
            let s = row.x / 100.0;
            if s >= 0.5 {
                assert!(
                    auth[i] > local[i],
                    "s={s}: authoritative aggregate hit ratio {} must beat local-only {}",
                    auth[i],
                    local[i]
                );
                assert!(
                    hint[i] > local[i],
                    "s={s}: hint aggregate hit ratio {} must beat local-only {}",
                    hint[i],
                    local[i]
                );
            }
        }
    }

    /// Acceptance part (b): a remote hit must be cheaper than a disk
    /// fetch under both the hub and the switch fabric — and both tiers
    /// must actually have seen traffic (a zero mean means no evidence).
    #[test]
    fn remote_hits_cheaper_than_disk_on_both_fabrics() {
        let fig = ablation_cooperative_latency(&Grid::smoke());
        let remote = fig.column("remote fetch (ms)").unwrap();
        let disk = fig.column("disk fetch (ms)").unwrap();
        for (i, fabric) in ["hub", "switch"].iter().enumerate() {
            assert!(remote[i] > 0.0, "{fabric}: no remote hits recorded");
            assert!(disk[i] > 0.0, "{fabric}: no disk fetches recorded");
            assert!(
                remote[i] < disk[i],
                "{fabric}: remote fetch {}ms must be cheaper than disk {}ms",
                remote[i],
                disk[i]
            );
        }
    }

    /// Acceptance part (c): with the same aggregate capacity,
    /// singleton-preserving eviction must leave the cluster caching more
    /// distinct blocks than the duplicate-oblivious variant.
    #[test]
    fn singleton_preserving_widens_cluster_residency() {
        let fig = ablation_cooperative_residency(&Grid::smoke());
        let singleton = fig.column("singleton-preserving").unwrap();
        let naive = fig.column("naive").unwrap();
        // Row 0 is distinct resident blocks.
        assert!(
            singleton[0] > naive[0],
            "singleton-preserving distinct residency {} must exceed naive {}",
            singleton[0],
            naive[0]
        );
    }

    /// Acceptance part (d): the experiment JSON carries the
    /// local/remote/disk breakdown for cooperative runs, and the tiers
    /// account for real traffic.
    #[test]
    fn cooperative_breakdown_lands_in_summary() {
        use crate::report::CacheEfficiency;
        let grid = Grid::smoke();
        let d = *grid.d_values.iter().find(|&&d| d >= 64 << 10).unwrap();
        let mut spec = ClusterSpec::paper(Some(coop_cache(DirectoryMode::Authoritative, true)));
        spec.seed = grid.seed;
        let r = run_experiment(&spec, &coop_apps(&grid, d, 0.75));
        assert!(r.completed && r.total_verify_failures() == 0);
        let eff = CacheEfficiency::from_run(&r).unwrap();
        let coop = eff.cooperative.clone().expect("cooperative section missing from summary");
        assert_eq!(coop.directory, "authoritative");
        assert!(coop.local_hit_blocks > 0);
        assert!(coop.remote_hit_blocks > 0, "no remote hits at s=75%");
        assert!(coop.disk_fetch_blocks > 0, "cold misses must reach disk");
        assert!(coop.aggregate_hit_ratio >= r.hit_ratio().unwrap());
        // Authoritative directory: staleness is bounded by the in-flight
        // window (an eviction notice racing a concurrent query), a small
        // fraction of the peer traffic — unlike hint mode, where the
        // directory only ever grows.
        assert!(
            coop.remote_stale_blocks <= coop.remote_hit_blocks / 10,
            "authoritative staleness {} out of proportion to {} remote hits",
            coop.remote_stale_blocks,
            coop.remote_hit_blocks
        );
        let json = serde_json::to_string(&eff).unwrap();
        assert!(json.contains("\"remote_hit_blocks\""));
        // An uncached run has no cooperative section.
        let baseline = run_experiment(
            &{
                let mut s = ClusterSpec::paper(Some(CacheConfig::paper()));
                s.seed = grid.seed;
                s
            },
            &coop_apps(&grid, d, 0.75),
        );
        assert!(CacheEfficiency::from_run(&baseline).unwrap().cooperative.is_none());
    }

    /// The acceptance bar for the policy subsystem: under skewed workloads
    /// with real inter-application sharing (`s ≥ 0.5`), protecting shared
    /// blocks must beat the paper's clock on hit rate.
    #[test]
    fn sharing_aware_beats_clock_on_shared_skewed_workloads() {
        let fig = ablation_policy_comparison(&Grid::smoke());
        let clock = fig.column("clock").unwrap();
        let sharing = fig.column("sharing-aware").unwrap();
        for (i, row) in fig.rows.iter().enumerate() {
            let s = row.x / 100.0;
            if (0.5..1.0).contains(&s) {
                assert!(
                    sharing[i] > clock[i],
                    "s={s}: sharing-aware hit ratio {} must beat clock {}",
                    sharing[i],
                    clock[i]
                );
            } else if s >= 1.0 {
                // At s = 1 every resident block is shared by both
                // applications, so the sharing signal carries no
                // information and parity is the expected outcome.
                assert!(
                    sharing[i] >= clock[i],
                    "s=1: sharing-aware hit ratio {} fell below clock {}",
                    sharing[i],
                    clock[i]
                );
            }
        }
        // Sanity: every policy produced a real hit ratio.
        for row in &fig.rows {
            for (k, &v) in row.y.iter().enumerate() {
                assert!(
                    v > 0.0 && v < 1.0,
                    "policy {} at s={} produced degenerate hit ratio {v}",
                    fig.series[k],
                    row.x
                );
            }
        }
    }
}
