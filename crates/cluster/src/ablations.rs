//! Ablations of the paper's design decisions (§3.2), each regenerable as a
//! figure-style table.

use crate::builder::ClusterSpec;
use crate::experiment::run_experiment;
use crate::figures::Grid;
use crate::report::FigureData;
use crate::sweep::parallel_map;
use kcache::{CacheConfig, EvictPolicy, PartitionConfig, PartitionMode, PolicyKind};
use sim_core::Dur;
use sim_net::{NetConfig, NodeId};
use workload::{AppSpec, Mode};

fn app(grid: &Grid, d: u32, p: u32, mode: Mode, l: f64, s: f64, name: &str) -> AppSpec {
    AppSpec {
        name: name.into(),
        nodes: (0..p as u16).map(NodeId).collect(),
        total_bytes: grid.total_bytes,
        request_size: d,
        mode,
        locality: l,
        sharing: s,
        hotspot: 0.0,
        shared_file: "shared".into(),
        file_size: grid.file_size,
        start_delay: Dur::ZERO,
        min_requests: 1,
    }
}

fn makespans(
    grid: &Grid,
    configs: Vec<(Option<CacheConfig>, Vec<AppSpec>, Option<NetConfig>)>,
) -> Vec<f64> {
    parallel_map(configs, |(cache, apps, net)| {
        let mut spec = ClusterSpec::paper(cache.clone());
        if let Some(net) = net {
            spec.net = net.clone();
        }
        spec.seed = grid.seed;
        let r = run_experiment(&spec, apps);
        assert!(r.completed && r.total_verify_failures() == 0);
        r.mean_makespan_s()
    })
}

/// Write-behind vs write-through vs no cache (the flusher's justification).
pub fn ablation_write_policy(grid: &Grid) -> FigureData {
    let mut configs = Vec::new();
    for &d in &grid.d_values {
        let apps = vec![app(grid, d, 4, Mode::Write, 0.0, 0.0, "app0")];
        configs.push((Some(CacheConfig::paper()), apps.clone(), None));
        let wt = CacheConfig { write_behind: false, ..CacheConfig::paper() };
        configs.push((Some(wt), apps.clone(), None));
        configs.push((None, apps, None));
    }
    let vals = makespans(grid, configs);
    let mut fig = FigureData::new(
        "ablation_write_policy",
        "write-behind vs write-through (writes, p=4, l=0)",
        "request size d (bytes)",
        "total time (s)",
        vec!["write-behind".into(), "write-through".into(), "no caching".into()],
    );
    for (i, &d) in grid.d_values.iter().enumerate() {
        fig.push(d as f64, vec![vals[3 * i], vals[3 * i + 1], vals[3 * i + 2]]);
    }
    fig
}

/// Approximate (clock) vs exact LRU: end-to-end effect on a localized read
/// workload. (The paper's argument — per-access CPU overhead of exact LRU —
/// is quantified by the `buffer_manager` Criterion bench.)
pub fn ablation_lru(grid: &Grid) -> FigureData {
    let mut configs = Vec::new();
    for &d in &grid.d_values {
        let apps = vec![app(grid, d, 4, Mode::Read, 0.8, 0.0, "app0")];
        let clock =
            CacheConfig { policy: EvictPolicy::of(PolicyKind::Clock), ..CacheConfig::paper() };
        let exact =
            CacheConfig { policy: EvictPolicy::of(PolicyKind::ExactLru), ..CacheConfig::paper() };
        configs.push((Some(clock), apps.clone(), None));
        configs.push((Some(exact), apps, None));
    }
    let vals = makespans(grid, configs);
    let mut fig = FigureData::new(
        "ablation_lru",
        "approximate (clock) vs exact LRU (reads, p=4, l=0.8)",
        "request size d (bytes)",
        "total time (s)",
        vec!["clock (approximate)".into(), "exact LRU".into()],
    );
    for (i, &d) in grid.d_values.iter().enumerate() {
        fig.push(d as f64, vec![vals[2 * i], vals[2 * i + 1]]);
    }
    fig
}

/// Clean-first eviction preference on a mixed read+write co-schedule.
pub fn ablation_clean_first(grid: &Grid) -> FigureData {
    let mut configs = Vec::new();
    for &d in &grid.d_values {
        let apps = vec![
            app(grid, d, 4, Mode::Read, 0.5, 0.5, "appA"),
            app(grid, d, 4, Mode::Write, 0.5, 0.5, "appB"),
        ];
        let clean = CacheConfig {
            policy: EvictPolicy { kind: PolicyKind::Clock, clean_first: true },
            ..CacheConfig::paper()
        };
        let oblivious = CacheConfig {
            policy: EvictPolicy { kind: PolicyKind::Clock, clean_first: false },
            ..CacheConfig::paper()
        };
        configs.push((Some(clean), apps.clone(), None));
        configs.push((Some(oblivious), apps, None));
    }
    let vals = makespans(grid, configs);
    let mut fig = FigureData::new(
        "ablation_clean_first",
        "clean-first vs oblivious eviction (read+write instances, p=4)",
        "request size d (bytes)",
        "total time (s)",
        vec!["clean-first".into(), "oblivious".into()],
    );
    for (i, &d) in grid.d_values.iter().enumerate() {
        fig.push(d as f64, vec![vals[2 * i], vals[2 * i + 1]]);
    }
    fig
}

/// Shared hub (the paper's platform) vs a store-and-forward switch.
pub fn ablation_fabric(grid: &Grid) -> FigureData {
    let mut configs = Vec::new();
    for &d in &grid.d_values {
        let apps = vec![
            app(grid, d, 4, Mode::Read, 0.5, 0.5, "appA"),
            app(grid, d, 4, Mode::Read, 0.5, 0.5, "appB"),
        ];
        for net in [NetConfig::hub_100mbps(), NetConfig::switch_100mbps()] {
            for cache in [Some(CacheConfig::paper()), None] {
                configs.push((cache, apps.clone(), Some(net.clone())));
            }
        }
    }
    let vals = makespans(grid, configs);
    let mut fig = FigureData::new(
        "ablation_fabric",
        "hub vs switch (two read instances, p=4, l=0.5, s=50%)",
        "request size d (bytes)",
        "total time (s)",
        vec![
            "hub + caching".into(),
            "hub, no caching".into(),
            "switch + caching".into(),
            "switch, no caching".into(),
        ],
    );
    for (i, &d) in grid.d_values.iter().enumerate() {
        fig.push(d as f64, (0..4).map(|k| vals[4 * i + k]).collect());
    }
    fig
}

/// Coherent sync-writes vs plain write-behind under full sharing.
pub fn ablation_sync_write(grid: &Grid) -> FigureData {
    let mut configs = Vec::new();
    for &d in &grid.d_values {
        for mode in [Mode::Write, Mode::SyncWrite] {
            let apps = vec![
                app(grid, d, 2, mode, 0.5, 1.0, "appA"),
                app(grid, d, 2, mode, 0.5, 1.0, "appB"),
            ];
            configs.push((Some(CacheConfig::paper()), apps, None));
        }
    }
    let vals = makespans(grid, configs);
    let mut fig = FigureData::new(
        "ablation_sync_write",
        "write-behind vs coherent sync-write (two instances, s=100%)",
        "request size d (bytes)",
        "total time (s)",
        vec!["write-behind".into(), "sync-write".into()],
    );
    for (i, &d) in grid.d_values.iter().enumerate() {
        fig.push(d as f64, vec![vals[2 * i], vals[2 * i + 1]]);
    }
    fig
}

/// Harvester watermark sensitivity on a write-heavy workload.
pub fn ablation_harvester(grid: &Grid) -> FigureData {
    let marks = [(1usize, 4usize), (30, 75), (120, 200)];
    let mut configs = Vec::new();
    for &d in &grid.d_values {
        let apps = vec![app(grid, d, 4, Mode::Write, 0.3, 0.0, "app0")];
        for (lo, hi) in marks {
            let cfg = CacheConfig { low_watermark: lo, high_watermark: hi, ..CacheConfig::paper() };
            configs.push((Some(cfg), apps.clone(), None));
        }
    }
    let vals = makespans(grid, configs);
    let mut fig = FigureData::new(
        "ablation_harvester",
        "harvester watermarks (writes, p=4, l=0.3)",
        "request size d (bytes)",
        "total time (s)",
        vec!["low=1/high=4".into(), "low=30/high=75 (paper)".into(), "low=120/high=200".into()],
    );
    for (i, &d) in grid.d_values.iter().enumerate() {
        fig.push(d as f64, (0..3).map(|k| vals[3 * i + k]).collect());
    }
    fig
}

/// Extension: cache-size sensitivity (the paper fixes 1.2 MB; §5 motivates
/// exploring more).
pub fn ablation_cache_size(grid: &Grid) -> FigureData {
    let sizes = [75usize, 150, 300, 600, 1200];
    let d = *grid.d_values.iter().find(|&&d| d >= 64 << 10).unwrap_or(&grid.d_values[0]);
    let mut configs = Vec::new();
    for &cap in &sizes {
        let apps = vec![
            app(grid, d, 4, Mode::Read, 0.5, 0.5, "appA"),
            app(grid, d, 4, Mode::Read, 0.5, 0.5, "appB"),
        ];
        let cfg = CacheConfig {
            capacity_blocks: cap,
            low_watermark: cap / 10,
            high_watermark: cap / 4,
            ..CacheConfig::paper()
        };
        configs.push((Some(cfg), apps, None));
    }
    let vals = makespans(grid, configs);
    let mut fig = FigureData::new(
        "ablation_cache_size",
        format!("cache size sweep (two read instances, d={d}, l=0.5, s=50%)"),
        "cache capacity (blocks)",
        "total time (s)",
        vec!["caching".into()],
    );
    for (i, &cap) in sizes.iter().enumerate() {
        fig.push(cap as f64, vec![vals[i]]);
    }
    fig
}

/// New-subsystem ablation: every replacement policy across sharing
/// degrees, under a Zipf-skewed two-instance read co-schedule. Reported
/// metric is the **cache hit ratio** — the policies' actual lever — rather
/// than makespan, so the figure isolates eviction quality from everything
/// downstream.
pub fn ablation_policy_comparison(grid: &Grid) -> FigureData {
    let sharings = [0.0, 0.25, 0.5, 0.75, 1.0];
    let d = *grid.d_values.iter().find(|&&d| d >= 64 << 10).unwrap_or(&grid.d_values[0]);
    let mut configs = Vec::new();
    for &s in &sharings {
        for kind in PolicyKind::ALL {
            let mut a = app(grid, d, 4, Mode::Read, 0.2, s, "appA");
            let mut b = app(grid, d, 4, Mode::Read, 0.2, s, "appB");
            a.hotspot = 0.9;
            b.hotspot = 0.9;
            // Enough requests that steady-state behavior dominates the
            // cold-start misses even on the smoke grid.
            a.min_requests = 64;
            b.min_requests = 64;
            let cfg = CacheConfig { policy: EvictPolicy::of(kind), ..CacheConfig::paper() };
            configs.push((cfg, vec![a, b]));
        }
    }
    let vals = parallel_map(configs, |(cache, apps)| {
        let mut spec = ClusterSpec::paper(Some(cache.clone()));
        spec.seed = grid.seed;
        let r = run_experiment(&spec, apps);
        assert!(r.completed && r.total_verify_failures() == 0);
        r.hit_ratio().unwrap_or(0.0)
    });
    let mut fig = FigureData::new(
        "ablation_policy",
        format!(
            "replacement policies vs sharing degree (two read instances, d={d}, l=0.2, zipf 0.9)"
        ),
        "sharing degree s (%)",
        "cache hit ratio",
        PolicyKind::ALL.iter().map(|k| k.name().to_string()).collect(),
    );
    let n = PolicyKind::ALL.len();
    for (i, &s) in sharings.iter().enumerate() {
        fig.push(s * 100.0, (0..n).map(|k| vals[n * i + k]).collect());
    }
    fig
}

/// New-subsystem ablation: per-application frame quotas under an
/// adversarial co-schedule. A reuse-heavy **victim** (Zipf hot set over
/// its private partition) shares node 0's cache with a sequential
/// **scanner** that streams fresh blocks and would, in a shared pool,
/// flush the victim's hot set. The x axis sweeps the victim's quota
/// share; series compare the shared pool against strict quotas and soft
/// quotas with borrowing. Reported metric is the **victim's own hit
/// ratio** (per-app attribution from the partitioning subsystem) — the
/// isolation the quotas are supposed to buy.
pub fn ablation_partitioning(grid: &Grid) -> FigureData {
    let d = *grid.d_values.iter().find(|&&d| d >= 64 << 10).unwrap_or(&grid.d_values[0]);
    let capacity = CacheConfig::paper().capacity_blocks;
    let victim_quotas = [capacity / 5, capacity / 2, capacity * 4 / 5];
    let modes = [PartitionMode::Shared, PartitionMode::Strict, PartitionMode::Soft];
    let mut configs = Vec::new();
    for &vq in &victim_quotas {
        for mode in modes {
            let mut victim = app(grid, d, 1, Mode::Read, 0.2, 0.0, "victim");
            victim.hotspot = 1.1;
            victim.min_requests = 96;
            let mut scanner = app(grid, d, 1, Mode::Read, 0.0, 0.0, "scanner");
            scanner.min_requests = 160;
            let cfg = CacheConfig {
                partitioning: PartitionConfig {
                    mode,
                    quotas: [(0u32, vq), (1u32, capacity - vq)].into_iter().collect(),
                },
                ..CacheConfig::paper()
            };
            configs.push((cfg, vec![victim, scanner]));
        }
    }
    let vals = parallel_map(configs, |(cache, apps)| {
        let mut spec = ClusterSpec::paper(Some(cache.clone()));
        spec.seed = grid.seed;
        let r = run_experiment(&spec, apps);
        assert!(r.completed && r.total_verify_failures() == 0);
        r.app_hit_ratio(0).unwrap_or(0.0)
    });
    let mut fig = FigureData::new(
        "ablation_partitioning",
        format!("per-app quotas vs shared pool (victim zipf 1.1 + scanner, d={d})"),
        "victim quota (frames)",
        "victim hit ratio",
        modes.iter().map(|m| m.name().to_string()).collect(),
    );
    for (i, &vq) in victim_quotas.iter().enumerate() {
        fig.push(vq as f64, (0..modes.len()).map(|k| vals[modes.len() * i + k]).collect());
    }
    fig
}

/// All ablations.
pub fn all_ablations(grid: &Grid) -> Vec<FigureData> {
    vec![
        ablation_write_policy(grid),
        ablation_lru(grid),
        ablation_clean_first(grid),
        ablation_fabric(grid),
        ablation_sync_write(grid),
        ablation_harvester(grid),
        ablation_cache_size(grid),
        ablation_policy_comparison(grid),
        ablation_partitioning(grid),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance bar for the policy subsystem: under skewed workloads
    /// with real inter-application sharing (`s ≥ 0.5`), protecting shared
    /// blocks must beat the paper's clock on hit rate.
    #[test]
    fn sharing_aware_beats_clock_on_shared_skewed_workloads() {
        let fig = ablation_policy_comparison(&Grid::smoke());
        let clock = fig.column("clock").unwrap();
        let sharing = fig.column("sharing-aware").unwrap();
        for (i, row) in fig.rows.iter().enumerate() {
            let s = row.x / 100.0;
            if (0.5..1.0).contains(&s) {
                assert!(
                    sharing[i] > clock[i],
                    "s={s}: sharing-aware hit ratio {} must beat clock {}",
                    sharing[i],
                    clock[i]
                );
            } else if s >= 1.0 {
                // At s = 1 every resident block is shared by both
                // applications, so the sharing signal carries no
                // information and parity is the expected outcome.
                assert!(
                    sharing[i] >= clock[i],
                    "s=1: sharing-aware hit ratio {} fell below clock {}",
                    sharing[i],
                    clock[i]
                );
            }
        }
        // Sanity: every policy produced a real hit ratio.
        for row in &fig.rows {
            for (k, &v) in row.y.iter().enumerate() {
                assert!(
                    v > 0.0 && v < 1.0,
                    "policy {} at s={} produced degenerate hit ratio {v}",
                    fig.series[k],
                    row.x
                );
            }
        }
    }
}
