//! Regenerate the paper's figures (and the ablations) from the command
//! line.
//!
//! ```text
//! cargo run --release -p cluster-harness --bin figures -- \
//!     [--fig 4|5|6|7|8|all|ablations|policy|policy-grid|partition|adaptive|cooperative] \
//!     [--quick|--full|--smoke] [--out results/] [--seed N]
//! ```

use cluster_harness::figures::{all_figures, fig4, fig5, fig6, fig7, fig8, Grid};
use cluster_harness::report::{write_outputs, FigureData};
use std::path::PathBuf;

fn main() {
    let mut fig = "all".to_string();
    let mut grid = Grid::quick();
    let mut out = PathBuf::from("results");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--fig" => fig = args.next().expect("--fig needs a value"),
            "--quick" => grid = Grid::quick(),
            "--full" => grid = Grid::full(),
            "--smoke" => grid = Grid::smoke(),
            "--out" => out = PathBuf::from(args.next().expect("--out needs a value")),
            "--seed" => {
                grid.seed = args.next().expect("--seed needs a value").parse().expect("seed")
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: figures [--fig 4|5|6|7|8|all|ablations|policy|policy-grid|partition|adaptive|cooperative] [--quick|--full|--smoke] [--out DIR] [--seed N]");
                std::process::exit(2);
            }
        }
    }

    let t0 = std::time::Instant::now();
    let figs: Vec<FigureData> = match fig.as_str() {
        "4" => fig4(&grid),
        "5" => fig5(&grid),
        "6" => fig6(&grid),
        "7" => fig7(&grid),
        "8" => fig8(&grid),
        "ablations" => cluster_harness::ablations::all_ablations(&grid),
        "policy" => vec![cluster_harness::ablations::ablation_policy_comparison(&grid)],
        "policy-grid" => cluster_harness::ablations::ablation_policy_grid(&grid),
        "partition" => vec![cluster_harness::ablations::ablation_partitioning(&grid)],
        "adaptive" => cluster_harness::ablations::ablation_adaptive(&grid),
        "cooperative" => cluster_harness::ablations::ablation_cooperative(&grid),
        "all" => {
            let mut f = all_figures(&grid);
            f.extend(cluster_harness::ablations::all_ablations(&grid));
            f
        }
        other => {
            eprintln!("unknown figure: {other}");
            std::process::exit(2);
        }
    };
    for f in &figs {
        println!("{}", f.to_markdown());
    }
    write_outputs(&out, &figs).expect("writing outputs");
    eprintln!(
        "regenerated {} figure table(s) in {:.1}s -> {}",
        figs.len(),
        t0.elapsed().as_secs_f64(),
        out.display()
    );
}
