//! Minimal sanity check: one cached vs uncached run, human-readable line
//! each. Useful as a first "is everything wired" probe.
//!
//! ```text
//! cargo run --release -p cluster-harness --bin smoke
//! ```

use cluster_harness::{run_experiment, ClusterSpec};
use kcache::CacheConfig;
use sim_core::Dur;
use sim_net::NodeId;
use workload::{AppSpec, Mode};

fn main() {
    for caching in [false, true] {
        let spec = ClusterSpec::paper(caching.then(CacheConfig::paper));
        let apps = vec![AppSpec {
            name: "smoke".into(),
            nodes: vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)],
            total_bytes: 1 << 20,
            request_size: 64 << 10,
            mode: Mode::Read,
            locality: 0.5,
            sharing: 0.0,
            hotspot: 0.0,
            shared_file: "shared".into(),
            file_size: 8 << 20,
            start_delay: Dur::ZERO,
            min_requests: 1,
            phases: Vec::new(),
        }];
        let r = run_experiment(&spec, &apps);
        println!(
            "caching={:<5} completed={} makespan={:.4}s read_latency={:.3}ms events={} verify_failures={} hit_ratio={}",
            caching,
            r.completed,
            r.mean_makespan_s(),
            r.mean_read_latency_s() * 1e3,
            r.events,
            r.total_verify_failures(),
            r.hit_ratio().map(|h| format!("{:.1}%", h * 100.0)).unwrap_or_else(|| "-".into()),
        );
    }
}
