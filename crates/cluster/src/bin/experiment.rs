//! Run a custom experiment described by a JSON config.
//!
//! ```text
//! cargo run --release -p cluster-harness --bin experiment -- config.json
//! ```
//!
//! The config shape (all cluster fields optional, partitioning included)
//! is documented on [`cluster_harness::config::ExperimentConfig`].
//! `policy` selects the replacement policy: `clock` (default),
//! `exact-lru`, `lfu`, `2q`, `arc`, or `sharing-aware`; `partitioning`
//! selects per-app frame quotas: `shared` (default), `strict`, or `soft`,
//! with per-app `quota_blocks`. All new fields default so pre-existing
//! configs parse unchanged.

use cluster_harness::config::ExperimentConfig;
use cluster_harness::{run_experiment, CacheEfficiency};

fn main() {
    let path = std::env::args().nth(1).unwrap_or_else(|| {
        eprintln!("usage: experiment <config.json>");
        std::process::exit(2);
    });
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    let cfg =
        ExperimentConfig::from_json(&text).unwrap_or_else(|e| panic!("bad config {path}: {e}"));
    let (spec, apps) = cfg.to_spec().unwrap_or_else(|e| panic!("bad config {path}: {e}"));

    let r = run_experiment(&spec, &apps);
    assert!(r.completed, "experiment hit the horizon");
    println!("{{");
    println!("  \"completed\": {},", r.completed);
    println!("  \"simulated_seconds\": {:.6},", r.sim_end.as_secs_f64());
    println!("  \"events\": {},", r.events);
    println!("  \"verify_failures\": {},", r.total_verify_failures());
    if let Some(h) = r.hit_ratio() {
        println!("  \"cache_hit_ratio\": {:.4},", h);
    }
    if let Some(eff) = CacheEfficiency::from_run(&r) {
        println!(
            "  \"cache\": {},",
            serde_json::to_string_pretty(&eff).expect("serialize cache efficiency")
        );
    }
    println!("  \"network_payload_bytes\": {},", r.fabric.payload_bytes);
    println!("  \"medium_utilization\": {:.4},", r.medium_utilization);
    println!(
        "  \"instances\": {}",
        serde_json::to_string_pretty(&r.instances).expect("serialize instances")
    );
    println!("}}");
}
