//! Run a custom experiment described by a JSON config.
//!
//! ```text
//! cargo run --release -p cluster-harness --bin experiment -- config.json
//! ```
//!
//! Config shape (all cluster fields optional):
//!
//! ```json
//! {
//!   "cluster": { "nodes": 6, "caching": true, "seed": 42,
//!                "cache_blocks": 300, "fabric": "hub",
//!                "policy": "clock", "clean_first": true },
//!   "apps": [
//!     { "name": "a", "nodes": [0,1,2,3], "total_mb": 6, "request_kb": 64,
//!       "mode": "read", "locality": 0.5, "sharing": 0.5, "hotspot": 0.0 }
//!   ]
//! }
//! ```
//!
//! `policy` selects the replacement policy: `clock` (default),
//! `exact-lru`, `lfu`, `2q`, `arc`, or `sharing-aware`. All new fields
//! default so pre-existing configs parse unchanged.

use cluster_harness::{run_experiment, CacheEfficiency, ClusterSpec};
use kcache::{CacheConfig, EvictPolicy, PolicyKind};
use serde::Deserialize;
use sim_core::Dur;
use sim_net::{NetConfig, NodeId};
use workload::{AppSpec, Mode};

#[derive(Deserialize)]
struct Config {
    #[serde(default)]
    cluster: ClusterCfg,
    apps: Vec<AppCfg>,
}

#[derive(Deserialize)]
#[serde(default)]
struct ClusterCfg {
    nodes: u16,
    caching: bool,
    seed: u64,
    cache_blocks: usize,
    /// "hub" (the paper's platform) or "switch".
    fabric: String,
    file_mb: u64,
    /// Replacement policy name (see `kcache::PolicyKind::parse`).
    policy: String,
    /// Prefer clean victims over dirty ones (the paper's choice).
    clean_first: bool,
}

impl Default for ClusterCfg {
    fn default() -> Self {
        ClusterCfg {
            nodes: 6,
            caching: true,
            seed: 42,
            cache_blocks: 300,
            fabric: "hub".into(),
            file_mb: 16,
            policy: "clock".into(),
            clean_first: true,
        }
    }
}

#[derive(Deserialize)]
struct AppCfg {
    name: String,
    nodes: Vec<u16>,
    total_mb: u64,
    request_kb: u32,
    /// "read" | "write" | "sync-write"
    mode: String,
    #[serde(default)]
    locality: f64,
    #[serde(default)]
    sharing: f64,
    /// Zipf skew of fresh accesses (0 = the paper's sequential walk).
    #[serde(default)]
    hotspot: f64,
    #[serde(default)]
    start_delay_ms: u64,
}

fn main() {
    let path = std::env::args().nth(1).unwrap_or_else(|| {
        eprintln!("usage: experiment <config.json>");
        std::process::exit(2);
    });
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    let cfg: Config =
        serde_json::from_str(&text).unwrap_or_else(|e| panic!("bad config {path}: {e}"));

    let kind = PolicyKind::parse(&cfg.cluster.policy).unwrap_or_else(|| {
        panic!(
            "unknown policy {:?} (use one of: {})",
            cfg.cluster.policy,
            PolicyKind::ALL.map(|k| k.name()).join(", ")
        )
    });
    let mut spec = ClusterSpec::paper(cfg.cluster.caching.then(|| CacheConfig {
        capacity_blocks: cfg.cluster.cache_blocks,
        low_watermark: (cfg.cluster.cache_blocks / 10).max(1),
        high_watermark: (cfg.cluster.cache_blocks / 4).max(2),
        policy: EvictPolicy { kind, clean_first: cfg.cluster.clean_first },
        ..CacheConfig::paper()
    }));
    spec.n_nodes = cfg.cluster.nodes;
    spec.seed = cfg.cluster.seed;
    spec.net = match cfg.cluster.fabric.as_str() {
        "hub" => NetConfig::hub_100mbps(),
        "switch" => NetConfig::switch_100mbps(),
        other => panic!("unknown fabric {other:?} (use \"hub\" or \"switch\")"),
    };

    let apps: Vec<AppSpec> = cfg
        .apps
        .iter()
        .map(|a| AppSpec {
            name: a.name.clone(),
            nodes: a.nodes.iter().map(|&n| NodeId(n)).collect(),
            total_bytes: a.total_mb << 20,
            request_size: a.request_kb << 10,
            mode: match a.mode.as_str() {
                "read" => Mode::Read,
                "write" => Mode::Write,
                "sync-write" => Mode::SyncWrite,
                other => panic!("unknown mode {other:?}"),
            },
            locality: a.locality,
            sharing: a.sharing,
            hotspot: a.hotspot,
            shared_file: "shared".into(),
            file_size: cfg.cluster.file_mb << 20,
            start_delay: Dur::millis(a.start_delay_ms),
            min_requests: 1,
        })
        .collect();

    let r = run_experiment(&spec, &apps);
    assert!(r.completed, "experiment hit the horizon");
    println!("{{");
    println!("  \"completed\": {},", r.completed);
    println!("  \"simulated_seconds\": {:.6},", r.sim_end.as_secs_f64());
    println!("  \"events\": {},", r.events);
    println!("  \"verify_failures\": {},", r.total_verify_failures());
    if let Some(h) = r.hit_ratio() {
        println!("  \"cache_hit_ratio\": {:.4},", h);
    }
    if let Some(eff) = CacheEfficiency::from_run(&r) {
        println!(
            "  \"cache\": {},",
            serde_json::to_string_pretty(&eff).expect("serialize cache efficiency")
        );
    }
    println!("  \"network_payload_bytes\": {},", r.fabric.payload_bytes);
    println!("  \"medium_utilization\": {:.4},", r.medium_utilization);
    println!(
        "  \"instances\": {}",
        serde_json::to_string_pretty(&r.instances).expect("serialize instances")
    );
    println!("}}");
}
