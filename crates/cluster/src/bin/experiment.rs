//! Run a custom experiment described by a JSON config.
//!
//! ```text
//! cargo run --release -p cluster-harness --bin experiment -- config.json \
//!     [--trace-out trace.json] [--metrics-out metrics.json] \
//!     [--flight-out flight.json]
//! ```
//!
//! The config shape (all cluster fields optional, partitioning included)
//! is documented on [`cluster_harness::config::ExperimentConfig`].
//! `policy` selects the replacement policy: `clock` (default),
//! `exact-lru`, `lfu`, `2q`, `arc`, or `sharing-aware`; `partitioning`
//! selects per-app frame quotas: `shared` (default), `strict`, or `soft`,
//! with per-app `quota_blocks`. All new fields default so pre-existing
//! configs parse unchanged.
//!
//! `--trace-out` writes the run's Chrome-trace JSON (open it in
//! `chrome://tracing` or Perfetto) with every node's ring merged in
//! timestamp order; `--metrics-out` writes the federated metric export
//! (cluster rollup + per-node snapshots and epoch bookkeeping);
//! `--flight-out` evaluates the config's anomaly rules against each
//! node's per-epoch deltas and writes the flight record — rule firings,
//! the metrics snapshot, and a bounded tail of recent trace events. Any
//! of the three flags forces the `telemetry` section of the config on.

use cluster_harness::config::ExperimentConfig;
use cluster_harness::{run_experiment, CacheEfficiency, TelemetryReport};

/// How many trailing trace events the flight record keeps.
const FLIGHT_TAIL_EVENTS: usize = 256;

fn usage() -> ! {
    eprintln!(
        "usage: experiment <config.json> [--trace-out FILE] [--metrics-out FILE] \
         [--flight-out FILE]"
    );
    std::process::exit(2);
}

fn main() {
    let mut config_path: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut flight_out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--trace-out" => trace_out = Some(args.next().unwrap_or_else(|| usage())),
            "--metrics-out" => metrics_out = Some(args.next().unwrap_or_else(|| usage())),
            "--flight-out" => flight_out = Some(args.next().unwrap_or_else(|| usage())),
            _ if config_path.is_none() => config_path = Some(a),
            _ => usage(),
        }
    }
    let Some(path) = config_path else { usage() };
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    let mut cfg =
        ExperimentConfig::from_json(&text).unwrap_or_else(|e| panic!("bad config {path}: {e}"));
    if trace_out.is_some() || metrics_out.is_some() || flight_out.is_some() {
        cfg.cluster.telemetry.enabled = true;
    }
    let (spec, apps) = cfg.to_spec().unwrap_or_else(|e| panic!("bad config {path}: {e}"));

    let r = run_experiment(&spec, &apps);
    assert!(r.completed, "experiment hit the horizon");
    println!("{{");
    println!("  \"completed\": {},", r.completed);
    println!("  \"simulated_seconds\": {:.6},", r.sim_end.as_secs_f64());
    println!("  \"events\": {},", r.events);
    println!("  \"verify_failures\": {},", r.total_verify_failures());
    if let Some(h) = r.hit_ratio() {
        println!("  \"cache_hit_ratio\": {:.4},", h);
    }
    if let Some(eff) = CacheEfficiency::from_run(&r) {
        println!(
            "  \"cache\": {},",
            serde_json::to_string_pretty(&eff).expect("serialize cache efficiency")
        );
    }
    if let Some(report) = TelemetryReport::from_run(&r) {
        println!(
            "  \"telemetry\": {},",
            serde_json::to_string_pretty(&report).expect("serialize telemetry")
        );
    }
    println!("  \"network_payload_bytes\": {},", r.fabric.payload_bytes);
    println!("  \"medium_utilization\": {:.4},", r.medium_utilization);
    println!(
        "  \"instances\": {}",
        serde_json::to_string_pretty(&r.instances).expect("serialize instances")
    );
    println!("}}");

    // File exports happen after the summary: metrics first (snapshot +
    // epoch deltas, non-destructive), then the trace. Draining the rings
    // is destructive and both the flight tail and `--trace-out` want the
    // events, so drain once and share.
    if let Some(cluster) = &r.obs {
        if let Some(p) = &metrics_out {
            std::fs::write(p, cluster.metrics_json())
                .unwrap_or_else(|e| panic!("cannot write {p}: {e}"));
        }
        if flight_out.is_none() && trace_out.is_none() {
            return;
        }
        let events = cluster.drain_trace();
        if let Some(p) = &flight_out {
            // Evaluate the config's anomaly rules against each node's
            // own epoch history; the flight record is always valid JSON,
            // with `"fired": false` on a healthy run.
            let rules = cfg.cluster.telemetry.anomaly_rules();
            let mut firings = Vec::new();
            for (name, hub) in cluster.hubs() {
                firings.extend(kcache::obs::evaluate(name, &hub.epoch_deltas(), &rules));
            }
            let json =
                kcache::obs::flight_json(&firings, &cluster.rollup(), &events, FLIGHT_TAIL_EVENTS);
            std::fs::write(p, json).unwrap_or_else(|e| panic!("cannot write {p}: {e}"));
        }
        if let Some(p) = &trace_out {
            std::fs::write(p, kcache::obs::chrome_trace_json(&events))
                .unwrap_or_else(|e| panic!("cannot write {p}: {e}"));
        }
    }
}
