//! Experiment execution and result extraction.

use crate::builder::{build, Cluster, ClusterSpec};
use kcache::obs::{ClusterObs, QuantileSnapshot};
use kcache::{AdaptiveStats, CacheModule, CacheStats, ModuleStats, PolicyStats};
use pvfs::{Iod, IodStats, Mgr};
use serde::Serialize;
use sim_core::{Dur, SimTime, StopReason};
use sim_net::{Fabric, FabricStats, TrafficClass};
use std::collections::BTreeMap;
use workload::{AppSpec, Coordinator};

/// Aggregated outcome of one instance of the micro-benchmark.
#[derive(Debug, Clone, Serialize)]
pub struct InstanceResult {
    pub name: String,
    /// First process start to last process finish, seconds.
    pub makespan_s: f64,
    /// Mean per-process request latency, seconds.
    pub read_latency_s: f64,
    pub write_latency_s: f64,
    pub requests: u64,
    pub bytes: u64,
    pub verify_failures: u64,
}

/// Per-application cache usage aggregated over all cache modules: frames
/// owned, aggregate quota, and the hit/miss/eviction traffic attributed
/// to the application.
#[derive(Debug, Clone, Serialize)]
pub struct AppCacheUsage {
    /// Application instance (index into the experiment's app list).
    pub app: u32,
    /// Aggregate frame quota: the per-module quota summed over every
    /// module whose ledger the app appears in (quotas are enforced per
    /// module, so this is the cap `resident` is measured against).
    /// 0 when unconstrained.
    pub quota: u64,
    pub resident: u64,
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
}

impl AppCacheUsage {
    /// Hits over attributed accesses (`None` before any traffic).
    pub fn hit_ratio(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        if total == 0 {
            None
        } else {
            Some(self.hits as f64 / total as f64)
        }
    }
}

/// Fetch-latency SLO summary for one traffic tier, merged over every
/// cache module's quantile sketch (telemetry-enabled runs only).
#[derive(Debug, Clone, Serialize)]
pub struct SloClassSummary {
    /// Traffic tier: `"default"` (disk fills) or `"peer"` (remote hits).
    pub class: String,
    /// Block fetches recorded into the sketch.
    pub samples: u64,
    pub p50_ns: u64,
    pub p95_ns: u64,
    pub p99_ns: u64,
    /// Configured p99 target for this tier, nanoseconds.
    pub target_p99_ns: u64,
    /// Fetches that exceeded the target (the SLO burn counter).
    pub burned: u64,
}

impl SloClassSummary {
    /// Fraction of fetches that burned the SLO (0 before any traffic).
    pub fn burn_ratio(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.burned as f64 / self.samples as f64
        }
    }
}

/// Everything measured in one run.
/// One buffer-manager shard's share of the cluster's cache state,
/// summed over every module (shards are per node; index `i` here is the
/// union of every node's shard `i`). A skewed `occupancy` spread is hash
/// imbalance; a skewed `evictions` spread is pressure imbalance.
#[derive(Debug, Clone, Serialize)]
pub struct ShardUsage {
    pub shard: usize,
    /// Frames resident at the end of the run.
    pub occupancy: u64,
    /// Lifetime evictions (clean + dirty).
    pub evictions: u64,
}

#[derive(Debug, Clone)]
pub struct ExperimentResult {
    pub instances: Vec<InstanceResult>,
    pub cache: Option<CacheStats>,
    /// Name of the replacement policy in effect (caching runs only).
    pub policy: Option<String>,
    /// Directory mode of the cooperative remote-hit tier
    /// ("authoritative"/"hint"), when enabled.
    pub cooperative: Option<String>,
    /// Frame-quota mode in effect (caching runs only).
    pub partitioning: Option<String>,
    /// The policy subsystem's own event ledger, summed over all modules.
    pub policy_stats: Option<PolicyStats>,
    /// The adaptive meta-policy's ledger (epoch/switch/ghost/quota-move
    /// counters merged over all modules; adaptive caching runs only).
    pub adaptive: Option<AdaptiveStats>,
    /// Per-application occupancy and attributed traffic, summed over all
    /// modules (caching runs only; ascending by app id).
    pub app_usage: Option<Vec<AppCacheUsage>>,
    /// Per-shard occupancy/eviction breakdown, summed over all modules
    /// (caching runs only; a single entry when `shards = 1`).
    pub shard_usage: Option<Vec<ShardUsage>>,
    pub module: Option<ModuleStats>,
    pub iod: IodStats,
    pub fabric: FabricStats,
    pub medium_utilization: f64,
    /// Distinct blocks resident anywhere in the cluster's caches at the
    /// end of the run (caching runs; 0 otherwise).
    pub distinct_resident_blocks: u64,
    /// Total resident copies across all caches; `copies - distinct` is
    /// the duplication the singleton-preserving policy suppresses.
    pub resident_block_copies: u64,
    pub events: u64,
    pub sim_end: SimTime,
    pub completed: bool,
    /// The cluster's federated telemetry plane (telemetry-enabled runs
    /// only): per-node hubs with their registries, epoch deltas, and
    /// trace rings, plus the cluster rollup — ready for the caller to
    /// export. A bare shared hub in `cache.obs` (the quickstart shape)
    /// is wrapped as a single-entry `ClusterObs`. Shared with the spec —
    /// reusing one spec across runs accumulates into the same hubs.
    pub obs: Option<std::sync::Arc<ClusterObs>>,
    /// Per-tier fetch-latency percentiles and SLO burn, merged over all
    /// cache modules (telemetry-enabled caching runs only).
    pub slo: Option<Vec<SloClassSummary>>,
}

impl ExperimentResult {
    /// Mean makespan across instances, seconds.
    pub fn mean_makespan_s(&self) -> f64 {
        if self.instances.is_empty() {
            return 0.0;
        }
        self.instances.iter().map(|i| i.makespan_s).sum::<f64>() / self.instances.len() as f64
    }

    /// Mean per-request read latency across instances, seconds.
    pub fn mean_read_latency_s(&self) -> f64 {
        let xs: Vec<f64> =
            self.instances.iter().map(|i| i.read_latency_s).filter(|x| *x > 0.0).collect();
        if xs.is_empty() {
            0.0
        } else {
            xs.iter().sum::<f64>() / xs.len() as f64
        }
    }

    /// Mean per-request write latency across instances, seconds.
    pub fn mean_write_latency_s(&self) -> f64 {
        let xs: Vec<f64> =
            self.instances.iter().map(|i| i.write_latency_s).filter(|x| *x > 0.0).collect();
        if xs.is_empty() {
            0.0
        } else {
            xs.iter().sum::<f64>() / xs.len() as f64
        }
    }

    /// Overall cache hit ratio (caching runs only).
    pub fn hit_ratio(&self) -> Option<f64> {
        let c = self.cache.as_ref()?;
        let total = c.hits + c.misses;
        if total == 0 {
            None
        } else {
            Some(c.hits as f64 / total as f64)
        }
    }

    pub fn total_verify_failures(&self) -> u64 {
        self.instances.iter().map(|i| i.verify_failures).sum()
    }

    /// Aggregate (local + remote) hit ratio: the fraction of block
    /// lookups served from *any* cache in the cluster. Local misses that
    /// a peer cache satisfied count as hits here; only blocks that went
    /// to disk remain misses.
    pub fn aggregate_hit_ratio(&self) -> Option<f64> {
        let c = self.cache.as_ref()?;
        let total = c.hits + c.misses;
        if total == 0 {
            return None;
        }
        let remote = self.module.as_ref().map_or(0, |m| m.remote_hit_blocks);
        Some((c.hits + remote) as f64 / total as f64)
    }

    /// Mean block-fetch latency from the disk tier (iod round trip),
    /// milliseconds.
    pub fn mean_disk_fetch_ms(&self) -> Option<f64> {
        let m = self.module.as_ref()?;
        (m.disk_fetch_blocks > 0).then(|| m.disk_fetch_ns as f64 / m.disk_fetch_blocks as f64 / 1e6)
    }

    /// Mean block-fetch latency from the remote-cache tier (directory +
    /// peer round trip), milliseconds.
    pub fn mean_remote_fetch_ms(&self) -> Option<f64> {
        let m = self.module.as_ref()?;
        (m.remote_hit_blocks > 0)
            .then(|| m.remote_fetch_ns as f64 / m.remote_hit_blocks as f64 / 1e6)
    }

    /// Cache hit ratio attributed to one application instance (caching
    /// runs with traffic from that app only).
    pub fn app_hit_ratio(&self, app: u32) -> Option<f64> {
        self.app_usage.as_ref()?.iter().find(|u| u.app == app)?.hit_ratio()
    }
}

/// Default wall-clock guard for a single run.
pub fn default_horizon() -> Dur {
    Dur::secs(3600)
}

/// Build and run one experiment to completion.
pub fn run_experiment(spec: &ClusterSpec, apps: &[AppSpec]) -> ExperimentResult {
    let mut cluster: Cluster = build(spec, apps);
    let horizon = SimTime::ZERO + default_horizon();
    let report = cluster.engine.run_until(horizon);
    let completed = report.stop == StopReason::Stopped;
    debug_assert!(completed, "experiment did not complete before horizon: {:?}", report.stop);

    let coord =
        cluster.engine.actor_as::<Coordinator>(cluster.coordinator).expect("coordinator downcast");
    let mut instances = Vec::new();
    for (i, a) in apps.iter().enumerate() {
        let procs: Vec<_> = coord.results().iter().filter(|r| r.instance == i as u32).collect();
        let makespan =
            coord.instance_makespan(i as u32).map(|(s, e)| e.since(s).as_secs_f64()).unwrap_or(0.0);
        let mut read = sim_core::Tally::new();
        let mut write = sim_core::Tally::new();
        let mut requests = 0;
        let mut bytes = 0;
        let mut verify_failures = 0;
        for p in &procs {
            read.merge(&p.read_latency);
            write.merge(&p.write_latency);
            requests += p.requests;
            bytes += p.bytes;
            verify_failures += p.verify_failures;
        }
        instances.push(InstanceResult {
            name: a.name.clone(),
            makespan_s: makespan,
            read_latency_s: read.mean() / 1e9,
            write_latency_s: write.mean() / 1e9,
            requests,
            bytes,
            verify_failures,
        });
    }

    // Aggregate subsystem statistics.
    let mut cache_total: Option<CacheStats> = None;
    let mut module_total: Option<ModuleStats> = None;
    let mut policy_total: Option<PolicyStats> = None;
    let mut adaptive_total: Option<AdaptiveStats> = None;
    let mut app_total: BTreeMap<u32, AppCacheUsage> = BTreeMap::new();
    let mut shard_total: Option<Vec<ShardUsage>> = None;
    // End-of-run cluster-wide residency: how many caches hold each block.
    // Distinct blocks vs total copies is the singleton-preservation
    // evidence — fewer duplicate copies means more of the cluster's
    // aggregate capacity covers distinct data.
    let mut cluster_residency: BTreeMap<kcache::BlockKey, u64> = BTreeMap::new();
    // Per-tier fetch-latency sketches merged across modules: class name →
    // (merged snapshot, target, burned).
    let mut slo_acc: BTreeMap<String, (QuantileSnapshot, u64, u64)> = BTreeMap::new();
    for m in cluster.modules.iter().flatten() {
        let module = cluster.engine.actor_as::<CacheModule>(*m).expect("module downcast");
        // Bring the hub's deferred hit/miss mirrors up to date before any
        // export reads them (no-op without telemetry).
        module.cache().obs_flush();
        if let Some(sketches) = module.fetch_latency_sketches() {
            for (class, snap, target, burned) in sketches {
                let name = match class {
                    TrafficClass::Peer => "peer",
                    _ => "default",
                };
                match slo_acc.get_mut(name) {
                    Some((acc, _, b)) => {
                        acc.merge(&snap);
                        *b += burned;
                    }
                    None => {
                        slo_acc.insert(name.to_string(), (snap, target, burned));
                    }
                }
            }
        }
        let cs = module.cache().stats();
        let ps = module.cache().policy_stats();
        let ms = module.stats().clone();
        policy_total.get_or_insert_with(PolicyStats::default).merge(&ps);
        if let Some(ast) = module.cache().adaptive_stats() {
            adaptive_total.get_or_insert_with(AdaptiveStats::default).merge(&ast);
        }
        for (id, u) in module.cache().app_usage() {
            // Effective (possibly tuner-adjusted) quota, not the static
            // config value — what residency is actually measured against.
            let quota = module.cache().quota_of(id).map(|q| q as u64).unwrap_or(0);
            let acc = app_total.entry(id.0).or_insert_with(|| AppCacheUsage {
                app: id.0,
                quota: 0,
                resident: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
            });
            acc.quota += quota;
            acc.resident += u.resident;
            acc.hits += u.hits;
            acc.misses += u.misses;
            acc.evictions += u.evictions;
        }
        let acc = cache_total.get_or_insert_with(CacheStats::default);
        acc.hits += cs.hits;
        acc.misses += cs.misses;
        acc.insertions += cs.insertions;
        acc.writes_absorbed += cs.writes_absorbed;
        acc.writes_passthrough += cs.writes_passthrough;
        acc.evictions_clean += cs.evictions_clean;
        acc.evictions_dirty += cs.evictions_dirty;
        acc.flush_blocks += cs.flush_blocks;
        acc.invalidated += cs.invalidated;
        acc.invalidated_dirty += cs.invalidated_dirty;
        let macc = module_total.get_or_insert_with(ModuleStats::default);
        macc.reads_intercepted += ms.reads_intercepted;
        macc.writes_intercepted += ms.writes_intercepted;
        macc.full_hits += ms.full_hits;
        macc.partial_hits += ms.partial_hits;
        macc.full_misses += ms.full_misses;
        macc.request_splits += ms.request_splits;
        macc.fake_read_acks += ms.fake_read_acks;
        macc.fake_write_acks += ms.fake_write_acks;
        macc.blocks_served += ms.blocks_served;
        macc.blocks_fetched += ms.blocks_fetched;
        macc.dedup_blocks += ms.dedup_blocks;
        macc.bytes_served += ms.bytes_served;
        macc.bytes_fetched += ms.bytes_fetched;
        macc.bytes_absorbed += ms.bytes_absorbed;
        macc.bytes_passthrough += ms.bytes_passthrough;
        macc.sync_writes += ms.sync_writes;
        macc.invalidate_msgs += ms.invalidate_msgs;
        macc.flush_msgs += ms.flush_msgs;
        macc.urgent_flush_blocks += ms.urgent_flush_blocks;
        macc.harvest_runs += ms.harvest_runs;
        macc.dir_queries += ms.dir_queries;
        macc.dir_updates += ms.dir_updates;
        macc.dir_located_blocks += ms.dir_located_blocks;
        macc.dir_unlocated_blocks += ms.dir_unlocated_blocks;
        macc.remote_hit_blocks += ms.remote_hit_blocks;
        macc.remote_stale_blocks += ms.remote_stale_blocks;
        macc.remote_bytes_fetched += ms.remote_bytes_fetched;
        macc.peer_reqs_served += ms.peer_reqs_served;
        macc.peer_blocks_served += ms.peer_blocks_served;
        macc.peer_bytes_served += ms.peer_bytes_served;
        macc.disk_fetch_blocks += ms.disk_fetch_blocks;
        macc.disk_fetch_ns += ms.disk_fetch_ns;
        macc.remote_fetch_ns += ms.remote_fetch_ns;
        let occ = module.cache().shard_occupancy();
        let ev = module.cache().shard_evictions();
        let shards = shard_total.get_or_insert_with(|| {
            (0..occ.len()).map(|i| ShardUsage { shard: i, occupancy: 0, evictions: 0 }).collect()
        });
        for (acc, (o, e)) in shards.iter_mut().zip(occ.iter().zip(&ev)) {
            acc.occupancy += *o as u64;
            acc.evictions += *e;
        }
        for key in module.cache().resident_keys() {
            *cluster_residency.entry(key).or_insert(0u64) += 1;
        }
    }
    let distinct_resident_blocks = cluster_residency.len() as u64;
    let resident_block_copies: u64 = cluster_residency.values().sum();

    let mut iod_total = IodStats::default();
    for &i in &cluster.iods {
        let iod = cluster.engine.actor_as::<Iod>(i).expect("iod downcast");
        let s = iod.stats();
        iod_total.read_reqs += s.read_reqs;
        iod_total.write_reqs += s.write_reqs;
        iod_total.flush_reqs += s.flush_reqs;
        iod_total.sync_writes += s.sync_writes;
        iod_total.bytes_read += s.bytes_read;
        iod_total.bytes_written += s.bytes_written;
        iod_total.disk_reads += s.disk_reads;
        iod_total.disk_writes += s.disk_writes;
        iod_total.invalidations_sent += s.invalidations_sent;
        iod_total.directory_entries += s.directory_entries;
    }

    let fabric = cluster.engine.actor_as::<Fabric>(cluster.fabric).expect("fabric downcast");
    let fabric_stats: FabricStats = fabric.stats().clone();
    let medium_utilization = fabric.medium_utilization(cluster.engine.now());

    // The run's telemetry plane: the spec's federated per-node hubs, or
    // a bare shared hub from `cache.obs` wrapped as a one-entry cluster
    // (the quickstart shape keeps working).
    let obs = spec
        .obs
        .clone()
        .or_else(|| spec.cache.as_ref().and_then(|c| c.obs.clone()).map(ClusterObs::shared));
    if let Some(cluster_obs) = &obs {
        // End-of-run telemetry: the block location directory's size and
        // staleness shedding become gauges on the mgr's hub (node 0 —
        // where the directory lives).
        let mgr = cluster.engine.actor_as::<Mgr>(cluster.mgr).expect("mgr downcast");
        let hub = cluster_obs.hub_for(0);
        hub.registry().gauge("dir.entries").set(mgr.directory_entries() as u64);
        hub.registry().gauge("dir.stale_dropped").set(mgr.stats().dir_stale_dropped);
    }
    let slo = (!slo_acc.is_empty()).then(|| {
        slo_acc
            .into_iter()
            .map(|(class, (snap, target, burned))| SloClassSummary {
                class,
                samples: snap.count(),
                p50_ns: snap.quantile(0.50),
                p95_ns: snap.quantile(0.95),
                p99_ns: snap.quantile(0.99),
                target_p99_ns: target,
                burned,
            })
            .collect::<Vec<_>>()
    });

    ExperimentResult {
        instances,
        cache: cache_total,
        policy: spec.cache.as_ref().map(|c| c.policy_label().to_string()),
        cooperative: spec
            .cache
            .as_ref()
            .and_then(|c| c.cooperative)
            .map(|c| c.directory.name().to_string()),
        partitioning: spec.cache.as_ref().map(|c| c.partitioning.mode.name().to_string()),
        policy_stats: policy_total,
        adaptive: adaptive_total,
        app_usage: spec
            .cache
            .is_some()
            .then(|| app_total.into_values().collect::<Vec<AppCacheUsage>>()),
        shard_usage: shard_total,
        module: module_total,
        iod: iod_total,
        fabric: fabric_stats,
        medium_utilization,
        distinct_resident_blocks,
        resident_block_copies,
        events: report.events,
        sim_end: report.end_time,
        completed,
        obs,
        slo,
    }
}
