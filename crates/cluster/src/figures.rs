//! Per-figure experiment drivers: one function per figure of the paper's
//! evaluation (§4.2), each regenerating the same series the paper plots.

use crate::builder::ClusterSpec;
use crate::experiment::{run_experiment, ExperimentResult};
use crate::report::FigureData;
use crate::sweep::parallel_map;
use kcache::CacheConfig;
use sim_core::Dur;
use sim_net::NodeId;
use workload::{AppSpec, Mode};

/// Sweep resolution and sizing shared by all figures.
#[derive(Debug, Clone)]
pub struct Grid {
    /// Application-level request sizes `d` (the x axis of every figure).
    pub d_values: Vec<u32>,
    /// Total bytes moved per instance (constant across the sweep, §4.2.3).
    pub total_bytes: u64,
    /// Logical size of each file.
    pub file_size: u64,
    pub seed: u64,
}

impl Grid {
    /// Small grid for CI / Criterion: a few d points, 2 MB per instance.
    pub fn quick() -> Grid {
        Grid {
            d_values: vec![1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20],
            total_bytes: 2 << 20,
            file_size: 8 << 20,
            seed: 42,
        }
    }

    /// Full grid matching the paper's x-axis density (1 KB .. 1 MB).
    pub fn full() -> Grid {
        Grid {
            d_values: vec![
                1 << 10,
                2 << 10,
                4 << 10,
                8 << 10,
                16 << 10,
                32 << 10,
                64 << 10,
                128 << 10,
                256 << 10,
                512 << 10,
                1 << 20,
            ],
            total_bytes: 6 << 20,
            file_size: 16 << 20,
            seed: 42,
        }
    }

    /// Tiny grid for smoke tests.
    pub fn smoke() -> Grid {
        Grid {
            d_values: vec![4 << 10, 256 << 10],
            total_bytes: 512 << 10,
            file_size: 4 << 20,
            seed: 42,
        }
    }
}

/// What a point contributes to its figure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Mean per-request read latency (Figures 4a, 5a).
    ReadLatency,
    /// Mean per-request write latency (Figures 4b, 5b).
    WriteLatency,
    /// Mean instance completion time (Figures 6-8).
    Makespan,
}

fn extract(metric: Metric, r: &ExperimentResult) -> f64 {
    assert!(r.completed, "experiment hit the horizon without completing");
    assert_eq!(r.total_verify_failures(), 0, "data corruption detected in experiment");
    match metric {
        Metric::ReadLatency => r.mean_read_latency_s(),
        Metric::WriteLatency => r.mean_write_latency_s(),
        Metric::Makespan => r.mean_makespan_s(),
    }
}

/// One sweep point: a cluster + app set + metric.
#[derive(Clone)]
struct Point {
    cache: Option<CacheConfig>,
    apps: Vec<AppSpec>,
    metric: Metric,
    seed: u64,
}

fn run_points(points: Vec<Point>) -> Vec<f64> {
    parallel_map(points, |p| {
        let mut spec = ClusterSpec::paper(p.cache.clone());
        spec.seed = p.seed;
        extract(p.metric, &run_experiment(&spec, &p.apps))
    })
}

fn nodes(p: u32, base: u16) -> Vec<NodeId> {
    (0..p as u16).map(|i| NodeId(base + i)).collect()
}

fn single_app(grid: &Grid, d: u32, p: u32, mode: Mode, locality: f64) -> AppSpec {
    AppSpec {
        name: "app0".into(),
        nodes: nodes(p, 0),
        total_bytes: grid.total_bytes,
        request_size: d,
        mode,
        locality,
        sharing: 0.0,
        hotspot: 0.0,
        shared_file: "shared".into(),
        file_size: grid.file_size,
        start_delay: Dur::ZERO,
        // Per-request latency figures need steady state, not cold start.
        min_requests: 32,
        phases: Vec::new(),
    }
}

fn two_apps(
    grid: &Grid,
    d: u32,
    nodes_a: Vec<NodeId>,
    nodes_b: Vec<NodeId>,
    mode: Mode,
    locality: f64,
    sharing: f64,
) -> Vec<AppSpec> {
    let mk = |name: &str, nodes: Vec<NodeId>| AppSpec {
        name: name.into(),
        nodes,
        total_bytes: grid.total_bytes,
        request_size: d,
        mode,
        locality,
        sharing,
        hotspot: 0.0,
        shared_file: "shared".into(),
        file_size: grid.file_size,
        start_delay: Dur::ZERO,
        min_requests: 1,
        phases: Vec::new(),
    };
    vec![mk("appA", nodes_a), mk("appB", nodes_b)]
}

// ---------------------------------------------------------------------
// Figure 4: caching overhead (single instance, p = 4, l = 0)
// ---------------------------------------------------------------------

/// Figures 4(a) and 4(b): per-request read and write time vs `d` with no
/// locality — the worst case for the caching version.
pub fn fig4(grid: &Grid) -> Vec<FigureData> {
    fig45(grid, 0.0, "fig4", "caching overhead (l=0)", &grid.d_values)
}

// ---------------------------------------------------------------------
// Figure 5: locality benefit (single instance, p = 4, l = 1)
// ---------------------------------------------------------------------

/// Figures 5(a) and 5(b): same sweep with perfect locality. The paper only
/// plots d up to ~100 KB here ("an individual request size cannot exceed
/// the cache size"): filter the sweep accordingly.
pub fn fig5(grid: &Grid) -> Vec<FigureData> {
    let ds: Vec<u32> = grid.d_values.iter().copied().filter(|d| *d <= 256 << 10).collect();
    fig45(grid, 1.0, "fig5", "locality benefit (l=1)", &ds)
}

fn fig45(grid: &Grid, l: f64, id: &str, title: &str, ds: &[u32]) -> Vec<FigureData> {
    let mut figs = Vec::new();
    for (sub, mode, metric) in
        [("a", Mode::Read, Metric::ReadLatency), ("b", Mode::Write, Metric::WriteLatency)]
    {
        let mut points = Vec::new();
        for caching in [true, false] {
            for &d in ds {
                points.push(Point {
                    cache: caching.then(CacheConfig::paper),
                    apps: vec![single_app(grid, d, 4, mode, l)],
                    metric,
                    seed: grid.seed,
                });
            }
        }
        let vals = run_points(points);
        let mut fig = FigureData::new(
            format!("{id}{sub}"),
            format!("{title} — {:?}s, p=4", mode),
            "request size d (bytes)",
            "time per request (s)",
            vec!["caching".into(), "no caching".into()],
        );
        let n = ds.len();
        for (i, &d) in ds.iter().enumerate() {
            fig.push(d as f64, vec![vals[i], vals[n + i]]);
        }
        figs.push(fig);
    }
    figs
}

// ---------------------------------------------------------------------
// Figures 6 and 7: two instances sharing data on the same nodes
// ---------------------------------------------------------------------

/// Figure 6: two instances on the same p=4 nodes, reads, l ∈ {0, .5, 1},
/// sharing ∈ {25, 50, 75, 100}%.
pub fn fig6(grid: &Grid) -> Vec<FigureData> {
    sharing_figure(grid, 4, "fig6")
}

/// Figure 7: same as Figure 6 with p = 2.
pub fn fig7(grid: &Grid) -> Vec<FigureData> {
    sharing_figure(grid, 2, "fig7")
}

const SHARINGS: [f64; 4] = [0.25, 0.5, 0.75, 1.0];
const LOCALITIES: [(char, f64); 3] = [('a', 0.0), ('b', 0.5), ('c', 1.0)];

fn sharing_figure(grid: &Grid, p: u32, id: &str) -> Vec<FigureData> {
    let mut figs = Vec::new();
    for (sub, l) in LOCALITIES {
        let mut points = Vec::new();
        for &s in &SHARINGS {
            for &d in &grid.d_values {
                points.push(Point {
                    cache: Some(CacheConfig::paper()),
                    apps: two_apps(grid, d, nodes(p, 0), nodes(p, 0), Mode::Read, l, s),
                    metric: Metric::Makespan,
                    seed: grid.seed,
                });
            }
        }
        // The no-caching version issues network requests regardless of s:
        // one line (run at s = 25%).
        for &d in &grid.d_values {
            points.push(Point {
                cache: None,
                apps: two_apps(grid, d, nodes(p, 0), nodes(p, 0), Mode::Read, l, 0.25),
                metric: Metric::Makespan,
                seed: grid.seed,
            });
        }
        let vals = run_points(points);
        let mut fig = FigureData::new(
            format!("{id}{sub}"),
            format!("two instances, reads, p={p}, l={l}"),
            "request size d (bytes)",
            "total time (s)",
            vec![
                "caching 25%".into(),
                "caching 50%".into(),
                "caching 75%".into(),
                "caching 100%".into(),
                "no caching".into(),
            ],
        );
        let n = grid.d_values.len();
        for (i, &d) in grid.d_values.iter().enumerate() {
            let row: Vec<f64> = (0..5).map(|k| vals[k * n + i]).collect();
            fig.push(d as f64, row);
        }
        figs.push(fig);
    }
    figs
}

// ---------------------------------------------------------------------
// Figure 8: caching vs parallelism
// ---------------------------------------------------------------------

/// Figure 8: can caching compensate for loss of parallelism? Two instances
/// either co-located on 3 nodes (with/without caching) or spread over 6
/// distinct nodes (without caching).
pub fn fig8(grid: &Grid) -> Vec<FigureData> {
    let mut figs = Vec::new();
    for (sub, l) in LOCALITIES {
        let mut points = Vec::new();
        // Caching, co-located on nodes 0-2, per sharing degree.
        for &s in &SHARINGS {
            for &d in &grid.d_values {
                points.push(Point {
                    cache: Some(CacheConfig::paper()),
                    apps: two_apps(grid, d, nodes(3, 0), nodes(3, 0), Mode::Read, l, s),
                    metric: Metric::Makespan,
                    seed: grid.seed,
                });
            }
        }
        // No caching, same 3 nodes.
        for &d in &grid.d_values {
            points.push(Point {
                cache: None,
                apps: two_apps(grid, d, nodes(3, 0), nodes(3, 0), Mode::Read, l, 0.25),
                metric: Metric::Makespan,
                seed: grid.seed,
            });
        }
        // No caching, 6 distinct nodes (full parallelism).
        for &d in &grid.d_values {
            points.push(Point {
                cache: None,
                apps: two_apps(grid, d, nodes(3, 0), nodes(3, 3), Mode::Read, l, 0.25),
                metric: Metric::Makespan,
                seed: grid.seed,
            });
        }
        let vals = run_points(points);
        let mut fig = FigureData::new(
            format!("fig8{sub}"),
            format!("caching vs parallelism, two instances on 3 vs 6 nodes, l={l}"),
            "request size d (bytes)",
            "total time (s)",
            vec![
                "caching 25% (3 nodes)".into(),
                "caching 50% (3 nodes)".into(),
                "caching 75% (3 nodes)".into(),
                "caching 100% (3 nodes)".into(),
                "no caching (same 3 nodes)".into(),
                "no caching (6 distinct nodes)".into(),
            ],
        );
        let n = grid.d_values.len();
        for (i, &d) in grid.d_values.iter().enumerate() {
            let row: Vec<f64> = (0..6).map(|k| vals[k * n + i]).collect();
            fig.push(d as f64, row);
        }
        figs.push(fig);
    }
    figs
}

/// Run every figure of the paper.
pub fn all_figures(grid: &Grid) -> Vec<FigureData> {
    let mut out = Vec::new();
    out.extend(fig4(grid));
    out.extend(fig5(grid));
    out.extend(fig6(grid));
    out.extend(fig7(grid));
    out.extend(fig8(grid));
    out
}
