//! Parallel parameter sweeps.
//!
//! Every experiment point is an independent deterministic simulation, so a
//! sweep is embarrassingly parallel: points are distributed over host
//! threads (std scoped threads) and results are returned in input order —
//! determinism is preserved regardless of thread count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Map `f` over `items` using up to `available_parallelism` host threads,
/// preserving input order in the result.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4).min(n);
    if threads <= 1 {
        return items.iter().map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let out: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());
    // A worker panic propagates when the scope joins its threads.
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(&items[i]);
                out.lock().unwrap()[i] = Some(r);
            });
        }
    });
    out.into_inner().unwrap().into_iter().map(|o| o.expect("sweep point not computed")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(items, |&x| x * x);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i * i) as u64);
        }
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = parallel_map(Vec::<u32>::new(), |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        let out = parallel_map(vec![7u32], |&x| x + 1);
        assert_eq!(out, vec![8]);
    }
}
