//! Cluster assembly: wires engine, fabric, node network stacks, disks,
//! iods, the mgr, optional cache modules, and application processes into a
//! runnable simulation — the model of the paper's 6-node Linux cluster.

use kcache::obs::ClusterObs;
use kcache::{CacheConfig, CacheModule};
use pvfs::{
    ByteRange, ClientConfig, CostModel, FileHandle, Iod, Mgr, PvfsClient, PvfsConfig, StripePolicy,
    CACHE_PORT, CLIENT_PORT_BASE, IOD_FLUSH_PORT, IOD_PORT, MGR_PORT,
};
use sim_core::{ActorId, DetRng, Dur, Engine, FifoResource, SharedResource};
use sim_disk::{DiskGeometry, DiskSched};
use sim_net::{Fabric, NetConfig, NodeId, NodeNet, Port};
use workload::{partition_of, AppProcess, AppSpec, Coordinator, Kickoff, ProcPlan};

/// How many directory-update generations a hint-mode sharer entry stays
/// believable before the mgr ages it out. Sized to a few times the
/// paper-configuration cache (300 blocks/node × 6 nodes): long enough
/// that live residents are always re-confirmed by ongoing fill traffic,
/// short enough that the directory tracks cache capacity, not history.
const HINT_DIR_MAX_AGE: u64 = 8_192;

/// Whole-cluster configuration.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// Number of nodes; every node runs an iod, node 0 also runs the mgr.
    pub n_nodes: u16,
    pub net: NetConfig,
    pub costs: CostModel,
    pub pvfs: PvfsConfig,
    /// `Some` = the paper's caching version; `None` = original PVFS.
    pub cache: Option<CacheConfig>,
    pub disk: DiskGeometry,
    pub disk_sched: DiskSched,
    pub seed: u64,
    /// Federated telemetry: one [`kcache::ObsHub`] per node, so trace
    /// pids separate by node and registries stay contention-free. When
    /// set, the builder hands each cache module (and the mgr) its
    /// node's hub, overriding `cache.obs`; when `None`, any single hub
    /// already in `cache.obs` is shared by every module (the pre-
    /// federation quickstart shape).
    pub obs: Option<std::sync::Arc<ClusterObs>>,
    /// Verify every read against the deterministic file pattern.
    pub verify_reads: bool,
    /// Preload file contents into the iods' page caches (memory-resident
    /// files, the platform state the paper measures against).
    pub preload_warm: bool,
}

impl ClusterSpec {
    /// The paper's platform: 6 nodes, 100 Mbps hub, P-III costs.
    pub fn paper(cache: Option<CacheConfig>) -> ClusterSpec {
        ClusterSpec {
            n_nodes: 6,
            net: NetConfig::hub_100mbps(),
            costs: CostModel::pentium3_800(),
            pvfs: PvfsConfig::default(),
            cache,
            disk: DiskGeometry::maxtor_20gb(),
            disk_sched: DiskSched::CLook,
            seed: 42,
            obs: None,
            verify_reads: true,
            preload_warm: true,
        }
    }
}

/// A built cluster, ready to run.
pub struct Cluster {
    pub engine: Engine,
    pub fabric: ActorId,
    pub mgr: ActorId,
    pub iods: Vec<ActorId>,
    pub modules: Vec<Option<ActorId>>,
    pub processes: Vec<ActorId>,
    pub coordinator: ActorId,
    pub cpus: Vec<SharedResource>,
}

/// Compute the locality-window size for a process: a fixed share of the
/// paper's cache capacity divided among the processes sharing a node, so
/// `l = 1` workloads stay cache-resident. Identical for caching and
/// no-caching runs (the *stream* must not depend on the system under test).
fn window_bytes(apps: &[AppSpec], d_proc: u32) -> u64 {
    let mut per_node = std::collections::HashMap::new();
    for a in apps {
        for n in &a.nodes {
            *per_node.entry(*n).or_insert(0u64) += 1;
        }
    }
    let max_procs = per_node.values().copied().max().unwrap_or(1).max(1);
    let cap = CacheConfig::paper().capacity_bytes() as u64;
    (cap / (5 * max_procs)).max(d_proc as u64)
}

/// Build a cluster and instantiate the given application instances on it.
pub fn build(spec: &ClusterSpec, apps: &[AppSpec]) -> Cluster {
    for a in apps {
        a.validate().unwrap_or_else(|e| panic!("bad app spec {}: {}", a.name, e));
        for n in &a.nodes {
            assert!(n.0 < spec.n_nodes, "app {} placed on missing node {:?}", a.name, n);
        }
    }
    // Frame quotas bind by application instance index (the AppId handed to
    // each cache module at registration); a quota naming a nonexistent
    // instance is a config bug, not an idle entry.
    if let Some(cache) = &spec.cache {
        cache
            .partitioning
            .validate(cache.capacity_blocks)
            .unwrap_or_else(|e| panic!("bad partitioning config: {e}"));
        for &id in cache.partitioning.quotas.keys() {
            assert!(
                (id as usize) < apps.len(),
                "quota for app instance {id}, but only {} instances are scheduled",
                apps.len()
            );
        }
    }
    let mut eng = Engine::new(spec.seed);
    let n = spec.n_nodes as usize;

    // Reserve the fabric and per-node dispatchers first (everyone needs
    // their ids).
    let fabric_id = eng.reserve_actor();
    let net_ids: Vec<ActorId> = (0..n).map(|_| eng.reserve_actor()).collect();
    eng.install(fabric_id, Box::new(Fabric::new(spec.net.clone(), net_ids.clone())));

    // Per-node CPUs and disks.
    let cpus: Vec<SharedResource> =
        (0..n).map(|i| FifoResource::shared(format!("cpu-{i}"))).collect();
    let disks: Vec<ActorId> = (0..n)
        .map(|_| eng.add_actor(Box::new(sim_disk::Disk::new(spec.disk.clone(), spec.disk_sched))))
        .collect();

    // iods on every node.
    let iods: Vec<ActorId> = (0..n)
        .map(|i| {
            eng.add_actor(Box::new(Iod::new(
                NodeId(i as u16),
                fabric_id,
                disks[i],
                cpus[i].clone(),
                spec.costs.clone(),
                spec.pvfs.clone(),
                spec.disk.capacity_blocks,
            )))
        })
        .collect();

    // mgr on node 0.
    let mgr_id = eng.add_actor(Box::new(Mgr::new(
        NodeId(0),
        fabric_id,
        cpus[0].clone(),
        spec.costs.clone(),
        StripePolicy {
            unit: spec.pvfs.stripe_unit,
            n_iods: spec.n_nodes as u32,
            total_iods: spec.n_nodes as u32,
        },
    )));

    // Cache modules on the nodes that run application processes (the
    // paper's modules live on client nodes).
    let client_nodes: std::collections::BTreeSet<u16> =
        apps.iter().flat_map(|a| a.nodes.iter().map(|n| n.0)).collect();
    let mut modules: Vec<Option<ActorId>> = vec![None; n];
    if let Some(cache_cfg) = &spec.cache {
        // A hint-mode directory receives no eviction removals; arm the
        // mgr's generation aging so it cannot accrete every block ever
        // cached. One generation == one directory update, so the window
        // scales with directory traffic, not wall time.
        if cache_cfg.cooperative.as_ref().map(|c| c.directory) == Some(kcache::DirectoryMode::Hint)
        {
            let mgr = eng.actor_as_mut::<Mgr>(mgr_id).expect("mgr downcast");
            mgr.set_hint_aging(HINT_DIR_MAX_AGE);
        }
        // The mgr traces its directory lookups into node 0's hub so
        // cross-node flows stitch through its lane. Federated specs hand
        // it hub 0; a bare shared hub in `cache.obs` works the same way.
        let mgr_hub = spec.obs.as_ref().map(|c| c.hub_for(0)).or_else(|| cache_cfg.obs.clone());
        if let Some(hub) = mgr_hub {
            let mgr = eng.actor_as_mut::<Mgr>(mgr_id).expect("mgr downcast");
            mgr.set_obs(hub);
        }
        for &node in &client_nodes {
            let mut cfg = cache_cfg.clone();
            if let Some(cluster_obs) = &spec.obs {
                // Per-node hubs: each module records into its own ring
                // and registry, keyed by node in the trace pid.
                cfg.obs = Some(cluster_obs.hub_for(node as usize));
            }
            let mut module = CacheModule::new(
                NodeId(node),
                fabric_id,
                cpus[node as usize].clone(),
                spec.costs.clone(),
                cfg,
            );
            // The block location directory lives with the mgr on node 0;
            // telling the module where it is arms the remote-hit tier
            // (a no-op unless the config enables cooperative caching).
            if cache_cfg.cooperative.is_some() {
                module.set_directory_home(NodeId(0));
            }
            let m = eng.add_actor(Box::new(module));
            modules[node as usize] = Some(m);
        }
    }

    // Pre-create the benchmark's files at the mgr and preload their bytes
    // at the iods (setup happens outside measured time).
    let iod_nodes: Vec<NodeId> = (0..spec.n_nodes).map(NodeId).collect();
    let mut handles: Vec<FileHandle> = Vec::new();
    {
        let mut names: Vec<(String, u64)> = Vec::new();
        for a in apps {
            if !names.iter().any(|(x, _)| *x == a.shared_file) {
                names.push((a.shared_file.clone(), a.file_size));
            }
            names.push((a.private_file(), a.file_size));
        }
        let mgr = eng.actor_as_mut::<Mgr>(mgr_id).expect("mgr downcast");
        for (name, size) in &names {
            handles.push(mgr.install_file(name, *size));
        }
    }
    for h in &handles {
        let whole = ByteRange::new(0, h.size.min(u32::MAX as u64) as u32);
        let per_iod = pvfs::split_ranges(&h.stripe, whole);
        for (slot, ranges) in per_iod.iter().enumerate() {
            if ranges.is_empty() {
                continue;
            }
            let node = h.stripe.global_iod(slot as u32, spec.n_nodes as u32) as usize;
            let iod = eng.actor_as_mut::<Iod>(iods[node]).expect("iod downcast");
            iod.preload(h.fid, ranges, spec.preload_warm);
        }
    }

    // Application processes.
    let total_procs: usize = apps.iter().map(|a| a.nodes.len()).sum();
    let coordinator = eng.add_actor(Box::new(Coordinator::new(total_procs)));
    let mut processes = Vec::new();
    let mut port_counter: u16 = 0;
    for (inst, a) in apps.iter().enumerate() {
        for (k, &node) in a.nodes.iter().enumerate() {
            let port = Port(CLIENT_PORT_BASE + port_counter);
            port_counter += 1;
            let sock_target = modules[node.index()].unwrap_or(fabric_id);
            let client = PvfsClient::new(ClientConfig {
                node,
                port,
                mgr_node: NodeId(0),
                iod_nodes: iod_nodes.clone(),
                sock_target,
                fabric: fabric_id,
                cpu: cpus[node.index()].clone(),
                costs: spec.costs.clone(),
                caching: modules[node.index()].is_some(),
                verify_reads: spec.verify_reads,
            });
            let plan = ProcPlan {
                instance: inst as u32,
                proc_index: k as u32,
                shared_file: a.shared_file.clone(),
                private_file: a.private_file(),
                n_requests: a.n_requests(),
                d_proc: a.d_proc(),
                mode: a.mode,
                locality: a.locality,
                sharing: a.sharing,
                hotspot: a.hotspot,
                partition: partition_of(a.file_size, k as u32, a.p()),
                window_bytes: window_bytes(apps, a.d_proc()),
                start_delay: a.start_delay,
                phases: a.phases.clone(),
            };
            let rng = DetRng::stream(spec.seed, (inst as u64) << 16 | k as u64);
            let proc_id = eng.add_actor(Box::new(AppProcess::new(client, plan, rng, coordinator)));
            processes.push(proc_id);
        }
    }

    // Wire the node dispatchers: well-known service ports plus client reply
    // ports (bound to the cache module when one is installed — the paper's
    // transparent interception).
    {
        let mut port_counter: u16 = 0;
        let mut bindings: Vec<(usize, Port, ActorId)> = Vec::new();
        bindings.push((0, MGR_PORT, mgr_id));
        for (i, &iod) in iods.iter().enumerate() {
            bindings.push((i, IOD_PORT, iod));
            bindings.push((i, IOD_FLUSH_PORT, iod));
        }
        for (i, m) in modules.iter().enumerate() {
            if let Some(m) = *m {
                bindings.push((i, CACHE_PORT, m));
            }
        }
        for (inst, a) in apps.iter().enumerate() {
            for (k, &node) in a.nodes.iter().enumerate() {
                let port = Port(CLIENT_PORT_BASE + port_counter);
                let proc_id =
                    processes[apps[..inst].iter().map(|x| x.nodes.len()).sum::<usize>() + k];
                port_counter += 1;
                match modules[node.index()] {
                    Some(m) => {
                        bindings.push((node.index(), port, m));
                    }
                    None => bindings.push((node.index(), port, proc_id)),
                }
            }
        }
        for (i, &net_id) in net_ids.iter().enumerate() {
            let mut nn = NodeNet::new(NodeId(i as u16));
            for (_, port, target) in bindings.iter().filter(|(b, _, _)| *b == i) {
                nn.bind(*port, *target);
            }
            eng.install(net_id, Box::new(nn));
        }
    }

    // Register client processes with their node's cache module, tagged
    // with their application instance so the policy subsystem can tell
    // applications apart (the sharing-aware eviction signal).
    {
        let mut port_counter: u16 = 0;
        for (inst, a) in apps.iter().enumerate() {
            for &node in a.nodes.iter() {
                let port = Port(CLIENT_PORT_BASE + port_counter);
                let proc_id = processes[port_counter as usize];
                port_counter += 1;
                if let Some(m) = modules[node.index()] {
                    let module = eng.actor_as_mut::<CacheModule>(m).expect("module downcast");
                    module.register_client(port, proc_id, kcache::AppId(inst as u32));
                }
            }
        }
    }

    // Kick everything off.
    let mut jitter = DetRng::stream(spec.seed, 0xAD0FF);
    for (i, &p) in processes.iter().enumerate() {
        let _ = i;
        let mut delay = Dur::nanos(jitter.exp_nanos(50_000));
        // Respect per-instance start offsets.
        let inst = {
            let mut acc = 0usize;
            let mut found = 0usize;
            for (j, a) in apps.iter().enumerate() {
                if i < acc + a.nodes.len() {
                    found = j;
                    break;
                }
                acc += a.nodes.len();
            }
            found
        };
        delay += apps[inst].start_delay;
        eng.post(delay, p, Kickoff);
    }

    Cluster {
        engine: eng,
        fabric: fabric_id,
        mgr: mgr_id,
        iods,
        modules,
        processes,
        coordinator,
        cpus,
    }
}
