//! # cluster-harness — assembly and experiment harness
//!
//! Builds complete simulated clusters (nodes, hub, disks, iods, mgr,
//! optional cache modules, application processes), runs experiments, and
//! regenerates every figure of the paper's evaluation plus ablations of its
//! design decisions.
//!
//! * [`builder`] — cluster wiring ([`ClusterSpec`], [`build`]).
//! * [`config`] — the JSON experiment-config surface (serde).
//! * [`experiment`] — one-shot runs with full metric extraction.
//! * [`figures`] — Figure 4-8 drivers ([`figures::all_figures`]).
//! * [`ablations`] — design-choice ablations ([`ablations::all_ablations`]).
//! * [`report`] — markdown/CSV/JSON rendering of figure data.
//! * [`sweep`] — order-preserving parallel sweep execution.

pub mod ablations;
pub mod builder;
pub mod config;
pub mod experiment;
pub mod figures;
pub mod report;
pub mod sweep;

pub use builder::{build, Cluster, ClusterSpec};
pub use config::ExperimentConfig;
pub use experiment::{
    run_experiment, AppCacheUsage, ExperimentResult, InstanceResult, SloClassSummary,
};
pub use figures::{all_figures, fig4, fig5, fig6, fig7, fig8, Grid};
pub use report::{
    write_outputs, AppEfficiency, CacheEfficiency, CooperativeReport, FigRow, FigureData,
    NodeTelemetryReport, SloReport, TelemetryReport,
};
pub use sweep::parallel_map;
