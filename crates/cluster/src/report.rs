//! Figure data containers and rendering (markdown tables, CSV, JSON), plus
//! the per-run cache-efficiency summary experiment runs emit.

use crate::experiment::{AppCacheUsage, ExperimentResult};
use kcache::AdaptiveStats;
use serde::Serialize;
use std::fmt::Write as _;
use std::path::Path;

/// Per-application slice of [`CacheEfficiency`]: occupancy against quota
/// plus the application's own hit ratio.
#[derive(Debug, Clone, Serialize)]
pub struct AppEfficiency {
    pub app: u32,
    /// Aggregate frame quota over the modules the app touched
    /// (0 = unconstrained).
    pub quota: u64,
    pub resident: u64,
    pub hit_ratio: f64,
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
}

impl AppEfficiency {
    fn from_usage(u: &AppCacheUsage) -> AppEfficiency {
        AppEfficiency {
            app: u.app,
            quota: u.quota,
            resident: u.resident,
            hit_ratio: u.hit_ratio().unwrap_or(0.0),
            hits: u.hits,
            misses: u.misses,
            evictions: u.evictions,
        }
    }
}

/// One candidate's lifetime ghost hit rate in the JSON summary.
#[derive(Debug, Clone, Serialize)]
pub struct GhostRateReport {
    pub policy: String,
    pub hits: u64,
    pub misses: u64,
    pub rate: f64,
}

/// One policy switch in the JSON summary.
#[derive(Debug, Clone, Serialize)]
pub struct SwitchReport {
    pub epoch: u64,
    pub from: String,
    pub to: String,
    pub from_rate: f64,
    pub to_rate: f64,
}

/// One quota transfer in the JSON summary, with the marginal-utility
/// evidence (per-epoch ghost refault counts) the tuner acted on.
#[derive(Debug, Clone, Serialize)]
pub struct QuotaMoveReport {
    pub epoch: u64,
    pub from_app: u32,
    pub to_app: u32,
    pub frames: u64,
    /// The loser's epoch refault count (frames hurt it least).
    pub from_refaults: u64,
    /// The winner's epoch refault count (frames help it most).
    pub to_refaults: u64,
}

/// The adaptive meta-policy's slice of [`CacheEfficiency`]: epoch and
/// switch counts, the per-epoch switch log, lifetime ghost hit rates per
/// candidate, and the quota-tuner move log.
#[derive(Debug, Clone, Serialize)]
pub struct AdaptiveReport {
    pub epochs: u64,
    pub switches: u64,
    pub quota_moves: u64,
    pub ghost_hit_rates: Vec<GhostRateReport>,
    pub switch_log: Vec<SwitchReport>,
    pub quota_log: Vec<QuotaMoveReport>,
}

impl AdaptiveReport {
    fn from_stats(s: &AdaptiveStats) -> AdaptiveReport {
        AdaptiveReport {
            epochs: s.epochs,
            switches: s.switches,
            quota_moves: s.quota_moves,
            ghost_hit_rates: s
                .ghost_rates
                .iter()
                .map(|g| GhostRateReport {
                    policy: g.kind.name().to_string(),
                    hits: g.hits,
                    misses: g.misses,
                    rate: g.rate(),
                })
                .collect(),
            switch_log: s
                .switch_log
                .iter()
                .map(|r| SwitchReport {
                    epoch: r.epoch,
                    from: r.from.name().to_string(),
                    to: r.to.name().to_string(),
                    from_rate: r.from_rate,
                    to_rate: r.to_rate,
                })
                .collect(),
            quota_log: s
                .quota_log
                .iter()
                .map(|r| QuotaMoveReport {
                    epoch: r.epoch,
                    from_app: r.from.0,
                    to_app: r.to.0,
                    frames: r.frames as u64,
                    from_refaults: r.from_refaults,
                    to_refaults: r.to_refaults,
                })
                .collect(),
        }
    }
}

/// The cooperative remote-hit tier's slice of [`CacheEfficiency`]: every
/// block lookup resolves to exactly one of three tiers — local cache,
/// a peer's cache, or disk — and this records the split plus the
/// directory/peer traffic and latency evidence behind it.
#[derive(Debug, Clone, Serialize)]
pub struct CooperativeReport {
    /// Directory mode: "authoritative" or "hint".
    pub directory: String,
    /// Blocks served from this node's own cache.
    pub local_hit_blocks: u64,
    /// Blocks served from a peer cache over the fabric.
    pub remote_hit_blocks: u64,
    /// Blocks that went all the way to the iod's disk.
    pub disk_fetch_blocks: u64,
    /// Fraction of lookups served from *any* cache (local or peer).
    pub aggregate_hit_ratio: f64,
    /// Peer blocks the directory promised but the peer had evicted
    /// (hint-mode staleness; falls through to disk, never wrong data).
    pub remote_stale_blocks: u64,
    pub dir_queries: u64,
    pub dir_updates: u64,
    pub dir_located_blocks: u64,
    pub dir_unlocated_blocks: u64,
    pub peer_reqs_served: u64,
    pub peer_blocks_served: u64,
    /// Mean per-block fetch latency by tier, milliseconds (0 when the
    /// tier saw no traffic).
    pub mean_remote_fetch_ms: f64,
    pub mean_disk_fetch_ms: f64,
    /// End-of-run cluster residency: distinct blocks vs total copies.
    /// The gap is the duplication singleton-preserving eviction trims.
    pub distinct_resident_blocks: u64,
    pub resident_block_copies: u64,
}

impl CooperativeReport {
    fn from_run(r: &ExperimentResult) -> Option<CooperativeReport> {
        let directory = r.cooperative.clone()?;
        let cache = r.cache.as_ref()?;
        let m = r.module.as_ref()?;
        Some(CooperativeReport {
            directory,
            local_hit_blocks: cache.hits,
            remote_hit_blocks: m.remote_hit_blocks,
            disk_fetch_blocks: m.disk_fetch_blocks,
            aggregate_hit_ratio: r.aggregate_hit_ratio().unwrap_or(0.0),
            remote_stale_blocks: m.remote_stale_blocks,
            dir_queries: m.dir_queries,
            dir_updates: m.dir_updates,
            dir_located_blocks: m.dir_located_blocks,
            dir_unlocated_blocks: m.dir_unlocated_blocks,
            peer_reqs_served: m.peer_reqs_served,
            peer_blocks_served: m.peer_blocks_served,
            mean_remote_fetch_ms: r.mean_remote_fetch_ms().unwrap_or(0.0),
            mean_disk_fetch_ms: r.mean_disk_fetch_ms().unwrap_or(0.0),
            distinct_resident_blocks: r.distinct_resident_blocks,
            resident_block_copies: r.resident_block_copies,
        })
    }
}

/// One histogram's digest in the telemetry summary. Percentiles come
/// from the log2 buckets, so each is an upper bound with at most one
/// power-of-two of slack.
#[derive(Debug, Clone, Serialize)]
pub struct HistogramReport {
    pub count: u64,
    pub sum: u64,
    pub mean: f64,
    pub p50: u64,
    pub p95: u64,
    pub p99: u64,
}

/// One traffic tier's fetch-latency SLO line in the telemetry summary:
/// sketch percentiles against the configured target plus the burn count.
#[derive(Debug, Clone, Serialize)]
pub struct SloReport {
    pub class: String,
    pub samples: u64,
    pub p50_ns: u64,
    pub p95_ns: u64,
    pub p99_ns: u64,
    pub target_p99_ns: u64,
    pub burned: u64,
    pub burn_ratio: f64,
}

impl SloReport {
    fn from_summary(s: &crate::experiment::SloClassSummary) -> SloReport {
        SloReport {
            class: s.class.clone(),
            samples: s.samples,
            p50_ns: s.p50_ns,
            p95_ns: s.p95_ns,
            p99_ns: s.p99_ns,
            target_p99_ns: s.target_p99_ns,
            burned: s.burned,
            burn_ratio: s.burn_ratio(),
        }
    }
}

/// One node's slice of the telemetry summary (per-node hubs only).
#[derive(Debug, Clone, Serialize)]
pub struct NodeTelemetryReport {
    pub node: String,
    pub trace_dropped: u64,
    pub epochs_logged: u64,
    pub epochs_discarded: u64,
    pub counters: std::collections::BTreeMap<String, u64>,
    pub gauges: std::collections::BTreeMap<String, u64>,
    pub histograms: std::collections::BTreeMap<String, HistogramReport>,
}

fn digest_histograms(
    hists: std::collections::BTreeMap<String, kcache::obs::HistogramSnapshot>,
) -> std::collections::BTreeMap<String, HistogramReport> {
    hists
        .into_iter()
        .map(|(n, h)| {
            let mean = if h.count > 0 { h.sum as f64 / h.count as f64 } else { 0.0 };
            let r = HistogramReport {
                count: h.count,
                sum: h.sum,
                mean,
                p50: h.quantile(0.50),
                p95: h.quantile(0.95),
                p99: h.quantile(0.99),
            };
            (n, r)
        })
        .collect()
}

/// The `telemetry` section of experiment JSON output: the cluster-rollup
/// counters/gauges, histogram digests with p50/p95/p99, the per-tier
/// fetch-latency SLO lines, trace/epoch bookkeeping, and — on federated
/// runs — the per-node breakdown. Full per-epoch deltas and the raw
/// trace stay behind `--metrics-out`/`--trace-out` — this section is the
/// glanceable slice.
#[derive(Debug, Clone, Serialize)]
pub struct TelemetryReport {
    /// Trace events dropped on ring overflow, summed over every node's
    /// ring (0 = the rings kept up).
    pub trace_dropped: u64,
    /// Epoch windows logged / discarded to the delta-log caps, summed
    /// over every node's hub.
    pub epochs_logged: u64,
    pub epochs_discarded: u64,
    /// Cluster rollup: counters and histograms sum across nodes; a
    /// gauge holds the last write, so per-node gauges live in `nodes`.
    pub counters: std::collections::BTreeMap<String, u64>,
    pub gauges: std::collections::BTreeMap<String, u64>,
    pub histograms: std::collections::BTreeMap<String, HistogramReport>,
    /// Per-tier fetch-latency percentiles vs SLO targets (caching runs
    /// with traffic only).
    pub slo: Vec<SloReport>,
    /// Per-node breakdown (empty when one shared hub serves the whole
    /// cluster — there is no per-node signal to break out).
    pub nodes: Vec<NodeTelemetryReport>,
}

impl TelemetryReport {
    /// Digest a single hub's cumulative state (non-destructive: the
    /// trace ring is left intact for a later `--trace-out` export).
    pub fn from_hub(hub: &kcache::ObsHub) -> TelemetryReport {
        let snap = hub.snapshot();
        let (epochs, discarded) = hub.epoch_counts();
        TelemetryReport {
            trace_dropped: hub.trace_dropped(),
            epochs_logged: epochs as u64,
            epochs_discarded: discarded,
            counters: snap.counters,
            gauges: snap.gauges,
            histograms: digest_histograms(snap.histograms),
            slo: Vec::new(),
            nodes: Vec::new(),
        }
    }

    /// Digest a finished run's federated telemetry plane: cluster
    /// rollup, SLO lines, and (on per-node topologies) the node
    /// breakdown. `None` when the run had telemetry off.
    pub fn from_run(r: &crate::experiment::ExperimentResult) -> Option<TelemetryReport> {
        let cluster = r.obs.as_ref()?;
        let rollup = cluster.rollup();
        let (epochs, discarded) = cluster.epoch_counts();
        let nodes = if cluster.is_shared() {
            Vec::new()
        } else {
            cluster
                .hubs()
                .map(|(name, hub)| {
                    let snap = hub.snapshot();
                    let (e, d) = hub.epoch_counts();
                    NodeTelemetryReport {
                        node: name.to_string(),
                        trace_dropped: hub.trace_dropped(),
                        epochs_logged: e as u64,
                        epochs_discarded: d,
                        counters: snap.counters,
                        gauges: snap.gauges,
                        histograms: digest_histograms(snap.histograms),
                    }
                })
                .collect()
        };
        Some(TelemetryReport {
            trace_dropped: cluster.trace_dropped(),
            epochs_logged: epochs as u64,
            epochs_discarded: discarded,
            counters: rollup.counters,
            gauges: rollup.gauges,
            histograms: digest_histograms(rollup.histograms),
            slo: r.slo.as_deref().unwrap_or_default().iter().map(SloReport::from_summary).collect(),
            nodes,
        })
    }
}

/// Cache-efficiency summary of one caching run: the replacement policy and
/// partitioning mode in effect, the hit/miss/eviction ledger, and the
/// per-application breakdown, serialized into experiment JSON output so
/// runs report cache behavior, not just makespan.
#[derive(Debug, Clone, Serialize)]
pub struct CacheEfficiency {
    pub policy: String,
    /// Frame-quota mode: "shared", "strict", or "soft".
    pub partitioning: String,
    pub hit_ratio: f64,
    pub hits: u64,
    pub misses: u64,
    pub inserts: u64,
    pub evictions_clean: u64,
    pub evictions_dirty: u64,
    pub eviction_scans: u64,
    pub writes_absorbed: u64,
    pub writes_passthrough: u64,
    pub invalidated: u64,
    /// Per-application occupancy and hit ratios (ascending by app id).
    pub apps: Vec<AppEfficiency>,
    /// Per-shard occupancy/eviction balance (one entry under the default
    /// single-pool manager; see `ShardUsage`).
    pub shards: Vec<crate::experiment::ShardUsage>,
    /// Meta-policy observability (adaptive runs only).
    pub adaptive: Option<AdaptiveReport>,
    /// Local/remote/disk tier breakdown (cooperative runs only).
    pub cooperative: Option<CooperativeReport>,
}

impl CacheEfficiency {
    /// Extract the summary from a finished run (`None` for uncached runs).
    pub fn from_run(r: &ExperimentResult) -> Option<CacheEfficiency> {
        let cache = r.cache.as_ref()?;
        let policy = r.policy.clone()?;
        let ps = r.policy_stats.as_ref().copied().unwrap_or_default();
        Some(CacheEfficiency {
            policy,
            partitioning: r.partitioning.clone().unwrap_or_else(|| "shared".into()),
            hit_ratio: r.hit_ratio().unwrap_or(0.0),
            hits: ps.hits,
            misses: ps.misses,
            inserts: ps.inserts,
            evictions_clean: ps.evictions_clean,
            evictions_dirty: ps.evictions_dirty,
            eviction_scans: ps.scans,
            writes_absorbed: cache.writes_absorbed,
            writes_passthrough: cache.writes_passthrough,
            invalidated: cache.invalidated,
            apps: r
                .app_usage
                .as_deref()
                .unwrap_or_default()
                .iter()
                .map(AppEfficiency::from_usage)
                .collect(),
            shards: r.shard_usage.clone().unwrap_or_default(),
            adaptive: r.adaptive.as_ref().map(AdaptiveReport::from_stats),
            cooperative: CooperativeReport::from_run(r),
        })
    }
}

/// One regenerated figure (or subplot): x values against named series.
#[derive(Debug, Clone, Serialize)]
pub struct FigureData {
    /// e.g. "fig6a"
    pub id: String,
    pub title: String,
    pub x_label: String,
    pub y_label: String,
    pub series: Vec<String>,
    pub rows: Vec<FigRow>,
}

#[derive(Debug, Clone, Serialize)]
pub struct FigRow {
    pub x: f64,
    pub y: Vec<f64>,
}

impl FigureData {
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
        series: Vec<String>,
    ) -> FigureData {
        FigureData {
            id: id.into(),
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series,
            rows: Vec::new(),
        }
    }

    pub fn push(&mut self, x: f64, y: Vec<f64>) {
        assert_eq!(y.len(), self.series.len(), "row width mismatch in {}", self.id);
        self.rows.push(FigRow { x, y });
    }

    /// Column of values for one series.
    pub fn column(&self, series: &str) -> Option<Vec<f64>> {
        let i = self.series.iter().position(|s| s == series)?;
        Some(self.rows.iter().map(|r| r.y[i]).collect())
    }

    /// Render as a GitHub-markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {} — {}", self.id, self.title);
        let _ = writeln!(out);
        let _ = write!(out, "| {} |", self.x_label);
        for s in &self.series {
            let _ = write!(out, " {} |", s);
        }
        let _ = writeln!(out);
        let _ = write!(out, "|---|");
        for _ in &self.series {
            let _ = write!(out, "---|");
        }
        let _ = writeln!(out);
        for r in &self.rows {
            let _ = write!(out, "| {} |", format_x(r.x));
            for v in &r.y {
                let _ = write!(out, " {:.6} |", v);
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Render as CSV (x, then one column per series).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{}", self.x_label);
        for s in &self.series {
            let _ = write!(out, ",{}", s);
        }
        let _ = writeln!(out);
        for r in &self.rows {
            let _ = write!(out, "{}", r.x);
            for v in &r.y {
                let _ = write!(out, ",{}", v);
            }
            let _ = writeln!(out);
        }
        out
    }
}

fn format_x(x: f64) -> String {
    let v = x as u64;
    if v >= 1 << 20 && v.is_multiple_of(1 << 20) {
        format!("{}M", v >> 20)
    } else if v >= 1024 && v.is_multiple_of(1024) {
        format!("{}K", v >> 10)
    } else {
        format!("{}", v)
    }
}

/// Write each figure as `<id>.csv` and `<id>.json` plus a combined
/// `figures.md` under `dir`.
pub fn write_outputs(dir: &Path, figs: &[FigureData]) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let mut md = String::new();
    for f in figs {
        std::fs::write(dir.join(format!("{}.csv", f.id)), f.to_csv())?;
        std::fs::write(
            dir.join(format!("{}.json", f.id)),
            serde_json::to_string_pretty(f).expect("figure serialization"),
        )?;
        md.push_str(&f.to_markdown());
        md.push('\n');
    }
    std::fs::write(dir.join("figures.md"), md)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig() -> FigureData {
        let mut f =
            FigureData::new("t1", "test figure", "size", "seconds", vec!["a".into(), "b".into()]);
        f.push(1024.0, vec![0.5, 0.25]);
        f.push(1048576.0, vec![1.5, 1.25]);
        f
    }

    #[test]
    fn markdown_contains_all_cells() {
        let md = fig().to_markdown();
        assert!(md.contains("| size | a | b |"));
        assert!(md.contains("| 1K | 0.500000 | 0.250000 |"));
        assert!(md.contains("| 1M | 1.500000 | 1.250000 |"));
    }

    #[test]
    fn csv_round_trip_shape() {
        let csv = fig().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "size,a,b");
        assert!(lines[1].starts_with("1024,"));
    }

    #[test]
    fn column_extraction() {
        let f = fig();
        assert_eq!(f.column("a").unwrap(), vec![0.5, 1.5]);
        assert_eq!(f.column("b").unwrap(), vec![0.25, 1.25]);
        assert!(f.column("zzz").is_none());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut f = fig();
        f.push(1.0, vec![0.0]);
    }
}
