//! JSON experiment configuration — the serde face of [`ClusterSpec`] +
//! [`AppSpec`] used by the `experiment` binary and round-tripped by the
//! configuration robustness tests.
//!
//! Every field beyond `apps` is optional with a backward-compatible
//! default, so configs written for earlier revisions (no `policy`, no
//! `partitioning`, no per-app `quota_blocks`) parse unchanged.
//!
//! ```json
//! {
//!   "cluster": { "nodes": 6, "caching": true, "seed": 42,
//!                "cache_blocks": 300, "fabric": "hub",
//!                "policy": "clock", "clean_first": true,
//!                "partitioning": "strict" },
//!   "apps": [
//!     { "name": "a", "nodes": [0,1], "total_mb": 6, "request_kb": 64,
//!       "mode": "read", "locality": 0.5, "sharing": 0.5,
//!       "hotspot": 0.0, "quota_blocks": 200 }
//!   ]
//! }
//! ```
//!
//! `partitioning` selects the frame-quota mode (`shared` — the default —,
//! `strict`, or `soft`); each app's `quota_blocks` is its frame quota
//! (`0`, the default, leaves the app unconstrained). Quotas bind by app
//! *index*: the `i`-th entry of `apps` is application instance `AppId(i)`.

use crate::builder::ClusterSpec;
use kcache::{
    AdaptiveConfig, CacheConfig, CooperativeConfig, DirectoryMode, EvictPolicy, PartitionConfig,
    PartitionMode, PolicyKind,
};
use serde::{Deserialize, Serialize};
use sim_core::Dur;
use sim_net::{NetConfig, NodeId};
use workload::{AppSpec, Mode, PhaseSpec};

/// Top-level JSON config: cluster knobs + application instances.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    #[serde(default)]
    pub cluster: ClusterCfg,
    pub apps: Vec<AppCfg>,
}

/// Cluster-level knobs (all defaulted — `{}` is a valid cluster section).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct ClusterCfg {
    pub nodes: u16,
    pub caching: bool,
    pub seed: u64,
    pub cache_blocks: usize,
    /// "hub" (the paper's platform) or "switch".
    pub fabric: String,
    pub file_mb: u64,
    /// Replacement policy name (see `kcache::PolicyKind::parse`), or
    /// `"adaptive"` for the `kcache-adaptive` meta-policy configured by
    /// the `adaptive` section.
    pub policy: String,
    /// Prefer clean victims over dirty ones (the paper's choice).
    pub clean_first: bool,
    /// Frame-quota mode: "shared" (default), "strict", or "soft".
    pub partitioning: String,
    /// Buffer-manager shards per node (1 = the paper's single pool;
    /// defaulted so pre-sharding configs parse unchanged). Capacity,
    /// watermarks and quotas split across shards; blocks route by hash.
    pub shards: usize,
    /// Meta-policy knobs (only consulted when `policy` is `"adaptive"`,
    /// except `epoch_accesses`, which also drives `SharingAware` referent
    /// decay under static policies). All defaulted: pre-adaptive configs
    /// parse unchanged.
    pub adaptive: AdaptiveCfg,
    /// Cooperative cluster-wide caching (the remote-hit tier). Defaulted
    /// off: pre-cooperative configs parse unchanged.
    pub cooperative: CooperativeCfg,
    /// Observability (the `kcache-obs` hub: metrics + trace ring).
    /// Defaulted off: pre-telemetry configs parse unchanged, and the
    /// cache hot paths keep their one never-taken branch.
    pub telemetry: TelemetryCfg,
}

/// The `telemetry` section of the cluster config. The derived default
/// is the off state: disabled, library-default trace capacity,
/// paper-derived SLO targets, stock anomaly thresholds — pre-telemetry
/// configs parse unchanged.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct TelemetryCfg {
    /// Wire a per-node [`kcache::ObsHub`] through every cache module
    /// and the mgr, federated by a [`kcache::obs::ClusterObs`].
    pub enabled: bool,
    /// Per-node trace-ring capacity in slots (0 picks the library
    /// default).
    pub trace_capacity: usize,
    /// Fetch-latency SLO targets per traffic tier.
    pub slo: SloCfg,
    /// Anomaly flight-recorder rule thresholds.
    pub anomaly: AnomalyCfg,
}

impl TelemetryCfg {
    /// Lower the SLO section into the obs crate's nanosecond targets.
    pub fn slo_targets(&self) -> kcache::obs::SloTargets {
        kcache::obs::SloTargets {
            fetch_p99_ns_default: (self.slo.fetch_p99_ms_default * 1e6) as u64,
            fetch_p99_ns_peer: (self.slo.fetch_p99_ms_peer * 1e6) as u64,
        }
    }

    /// Lower the anomaly section into the obs crate's rule thresholds.
    pub fn anomaly_rules(&self) -> kcache::obs::AnomalyRules {
        kcache::obs::AnomalyRules {
            hit_ratio_drop: self.anomaly.hit_ratio_drop,
            min_epoch_accesses: self.anomaly.min_epoch_accesses,
            stale_hints_per_epoch: self.anomaly.stale_hints_per_epoch,
            trace_drops_per_epoch: self.anomaly.trace_drops_per_epoch,
        }
    }
}

/// Per-tier fetch-latency p99 targets, milliseconds. Defaults sit
/// above the paper's measured medians (~9.1 ms disk fill, ~4.4 ms
/// remote hit) so a healthy run burns only in the tail.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct SloCfg {
    pub fetch_p99_ms_default: f64,
    pub fetch_p99_ms_peer: f64,
}

impl Default for SloCfg {
    fn default() -> Self {
        SloCfg { fetch_p99_ms_default: 15.0, fetch_p99_ms_peer: 8.0 }
    }
}

/// Anomaly flight-recorder thresholds (see `kcache::obs::anomaly` for
/// rule semantics).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct AnomalyCfg {
    /// Absolute hit-ratio drop between consecutive epochs that counts
    /// as a collapse.
    pub hit_ratio_drop: f64,
    /// Minimum accesses for an epoch's hit ratio to be judged.
    pub min_epoch_accesses: u64,
    /// Stale-hint blocks in one epoch that count as a storm.
    pub stale_hints_per_epoch: u64,
    /// Trace-ring drops in one epoch that count as an overflow burst.
    pub trace_drops_per_epoch: u64,
}

impl Default for AnomalyCfg {
    fn default() -> Self {
        let r = kcache::obs::AnomalyRules::default();
        AnomalyCfg {
            hit_ratio_drop: r.hit_ratio_drop,
            min_epoch_accesses: r.min_epoch_accesses,
            stale_hints_per_epoch: r.stale_hints_per_epoch,
            trace_drops_per_epoch: r.trace_drops_per_epoch,
        }
    }
}

/// The `cooperative` section of the cluster config.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct CooperativeCfg {
    /// Enable the remote-hit tier (directory at the mgr, peer fetches).
    pub enabled: bool,
    /// Directory consistency regime: "authoritative" or "hint".
    pub directory: String,
    /// Singleton-preserving (cluster-aware) eviction preference.
    pub singleton_preserving: bool,
}

impl Default for CooperativeCfg {
    fn default() -> Self {
        CooperativeCfg {
            enabled: false,
            directory: DirectoryMode::Authoritative.name().into(),
            singleton_preserving: true,
        }
    }
}

/// The `adaptive` section of the cluster config.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct AdaptiveCfg {
    /// Candidate policy names; empty (the default) means all six built-in
    /// policies. The first candidate starts live.
    pub candidates: Vec<String>,
    /// Cache accesses per epoch; 0 picks the default (512) under
    /// `policy = "adaptive"` and disables epochs otherwise.
    pub epoch_accesses: usize,
    /// Ghost hit-rate advantage a challenger needs to trigger a switch.
    pub hysteresis: f64,
    /// Enable the marginal-utility quota tuner.
    pub quota_tuning: bool,
    /// Frames of quota moved per epoch by the tuner.
    pub quota_step: usize,
    /// Fairness floor: the tuner never shrinks any app's quota below this
    /// many frames (1 — the old behavior — by default).
    pub quota_floor: usize,
}

impl Default for AdaptiveCfg {
    fn default() -> Self {
        AdaptiveCfg {
            candidates: Vec::new(),
            epoch_accesses: 0,
            hysteresis: 0.02,
            quota_tuning: true,
            quota_step: 8,
            quota_floor: 1,
        }
    }
}

/// Default epoch length under `policy = "adaptive"` when the config does
/// not set one.
pub const DEFAULT_EPOCH_ACCESSES: usize = 512;

impl Default for ClusterCfg {
    fn default() -> Self {
        ClusterCfg {
            nodes: 6,
            caching: true,
            seed: 42,
            cache_blocks: 300,
            fabric: "hub".into(),
            file_mb: 16,
            policy: "clock".into(),
            clean_first: true,
            partitioning: "shared".into(),
            shards: 1,
            adaptive: AdaptiveCfg::default(),
            cooperative: CooperativeCfg::default(),
            telemetry: TelemetryCfg::default(),
        }
    }
}

/// One application instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppCfg {
    pub name: String,
    pub nodes: Vec<u16>,
    pub total_mb: u64,
    pub request_kb: u32,
    /// "read" | "write" | "sync-write"
    pub mode: String,
    #[serde(default)]
    pub locality: f64,
    #[serde(default)]
    pub sharing: f64,
    /// Zipf skew of fresh accesses (0 = the paper's sequential walk).
    #[serde(default)]
    pub hotspot: f64,
    #[serde(default)]
    pub start_delay_ms: u64,
    /// Frame quota for this app under strict/soft partitioning
    /// (0 = unconstrained, the default — pre-partitioning configs parse
    /// unchanged).
    #[serde(default)]
    pub quota_blocks: usize,
    /// Phase schedule (empty, the default, keeps the instance-level
    /// locality/sharing/hotspot for the whole run).
    #[serde(default)]
    pub phases: Vec<PhaseCfg>,
}

/// One phase of a phase-shifting app (`workload::PhaseSpec` in JSON).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseCfg {
    /// Per-process requests before the next phase starts.
    pub requests: u64,
    #[serde(default)]
    pub locality: f64,
    #[serde(default)]
    pub sharing: f64,
    #[serde(default)]
    pub hotspot: f64,
}

impl ExperimentConfig {
    /// Parse a JSON document.
    pub fn from_json(text: &str) -> Result<ExperimentConfig, String> {
        serde_json::from_str(text).map_err(|e| e.to_string())
    }

    /// The [`PartitionConfig`] this config describes: the cluster-level
    /// mode plus one quota per app that sets `quota_blocks` (bound by app
    /// index).
    pub fn partitioning(&self) -> Result<PartitionConfig, String> {
        let mode = PartitionMode::parse(&self.cluster.partitioning).ok_or_else(|| {
            format!(
                "unknown partitioning {:?} (use \"shared\", \"strict\" or \"soft\")",
                self.cluster.partitioning
            )
        })?;
        let quotas = self
            .apps
            .iter()
            .enumerate()
            .filter(|(_, a)| a.quota_blocks > 0)
            .map(|(i, a)| (i as u32, a.quota_blocks))
            .collect();
        Ok(PartitionConfig { mode, quotas })
    }

    /// The meta-policy configuration this config describes: `Some` under
    /// `policy = "adaptive"` (candidates parsed, defaulting to all six),
    /// `None` for a static policy.
    pub fn adaptive(&self) -> Result<Option<AdaptiveConfig>, String> {
        if self.cluster.policy != "adaptive" {
            return Ok(None);
        }
        let a = &self.cluster.adaptive;
        let candidates = if a.candidates.is_empty() {
            PolicyKind::ALL.to_vec()
        } else {
            a.candidates
                .iter()
                .map(|name| {
                    PolicyKind::parse(name)
                        .ok_or_else(|| format!("unknown adaptive candidate {name:?}"))
                })
                .collect::<Result<Vec<_>, String>>()?
        };
        Ok(Some(AdaptiveConfig {
            candidates,
            hysteresis: a.hysteresis,
            quota_tuning: a.quota_tuning,
            quota_step: a.quota_step,
            ghost_history: 0,
            quota_floor: a.quota_floor,
        }))
    }

    /// The cooperative-caching configuration this config describes:
    /// `Some` when the `cooperative` section is enabled.
    pub fn cooperative(&self) -> Result<Option<CooperativeConfig>, String> {
        let c = &self.cluster.cooperative;
        if !c.enabled {
            return Ok(None);
        }
        let directory = DirectoryMode::parse(&c.directory).ok_or_else(|| {
            format!("unknown directory mode {:?} (use \"authoritative\" or \"hint\")", c.directory)
        })?;
        Ok(Some(CooperativeConfig { directory, singleton_preserving: c.singleton_preserving }))
    }

    /// Lower the config into a runnable `(ClusterSpec, Vec<AppSpec>)`.
    pub fn to_spec(&self) -> Result<(ClusterSpec, Vec<AppSpec>), String> {
        let adaptive = self.adaptive()?;
        let cooperative = self.cooperative()?;
        let kind = match &adaptive {
            // The first candidate starts live; `EvictPolicy.kind` echoes it.
            Some(a) => a.candidates[0],
            None => PolicyKind::parse(&self.cluster.policy).ok_or_else(|| {
                format!(
                    "unknown policy {:?} (use \"adaptive\" or one of: {})",
                    self.cluster.policy,
                    PolicyKind::ALL.map(|k| k.name()).join(", ")
                )
            })?,
        };
        let epoch_accesses = match (&adaptive, self.cluster.adaptive.epoch_accesses) {
            (Some(_), 0) => DEFAULT_EPOCH_ACCESSES,
            (_, n) => n,
        };
        let partitioning = self.partitioning()?;
        let blocks = self.cluster.cache_blocks;
        // One hub per node, federated: the builder hands each cache
        // module (and the mgr) its own hub so trace pids separate by
        // node and registries stay contention-free; `ClusterObs` merges
        // them back into a cluster rollup at report time.
        let obs = self.cluster.telemetry.enabled.then(|| {
            kcache::obs::ClusterObs::per_node(
                self.cluster.nodes as usize,
                match self.cluster.telemetry.trace_capacity {
                    0 => kcache::obs::DEFAULT_TRACE_CAPACITY,
                    n => n,
                },
            )
        });
        let mut spec = ClusterSpec::paper(self.cluster.caching.then(|| CacheConfig {
            capacity_blocks: blocks,
            low_watermark: (blocks / 10).max(1),
            high_watermark: (blocks / 4).max(2),
            policy: EvictPolicy { kind, clean_first: self.cluster.clean_first },
            partitioning,
            adaptive: adaptive.clone(),
            epoch_accesses,
            cooperative,
            slo: self.cluster.telemetry.slo_targets(),
            shards: self.cluster.shards.max(1),
            ..CacheConfig::paper()
        }));
        spec.obs = obs;
        spec.n_nodes = self.cluster.nodes;
        spec.seed = self.cluster.seed;
        spec.net = match self.cluster.fabric.as_str() {
            "hub" => NetConfig::hub_100mbps(),
            "switch" => NetConfig::switch_100mbps(),
            other => return Err(format!("unknown fabric {other:?} (use \"hub\" or \"switch\")")),
        };

        let apps = self
            .apps
            .iter()
            .map(|a| {
                Ok(AppSpec {
                    name: a.name.clone(),
                    nodes: a.nodes.iter().map(|&n| NodeId(n)).collect(),
                    total_bytes: a.total_mb << 20,
                    request_size: a.request_kb << 10,
                    mode: match a.mode.as_str() {
                        "read" => Mode::Read,
                        "write" => Mode::Write,
                        "sync-write" => Mode::SyncWrite,
                        other => return Err(format!("unknown mode {other:?}")),
                    },
                    locality: a.locality,
                    sharing: a.sharing,
                    hotspot: a.hotspot,
                    shared_file: "shared".into(),
                    file_size: self.cluster.file_mb << 20,
                    start_delay: Dur::millis(a.start_delay_ms),
                    min_requests: 1,
                    phases: a
                        .phases
                        .iter()
                        .map(|p| PhaseSpec {
                            requests: p.requests,
                            locality: p.locality,
                            sharing: p.sharing,
                            hotspot: p.hotspot,
                        })
                        .collect(),
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok((spec, apps))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pre_partitioning_config_parses_unchanged() {
        // A PR-2-era config: no partitioning anywhere.
        let cfg = ExperimentConfig::from_json(
            r#"{
                "cluster": { "nodes": 4, "caching": true, "seed": 7, "policy": "arc" },
                "apps": [
                    { "name": "a", "nodes": [0, 1], "total_mb": 2,
                      "request_kb": 64, "mode": "read", "locality": 0.5 }
                ]
            }"#,
        )
        .expect("old config must parse");
        assert_eq!(cfg.cluster.partitioning, "shared");
        assert_eq!(cfg.apps[0].quota_blocks, 0);
        let p = cfg.partitioning().unwrap();
        assert!(!p.is_partitioned(), "defaults reproduce the shared pool");
        let (spec, apps) = cfg.to_spec().unwrap();
        assert_eq!(spec.n_nodes, 4);
        assert!(!spec.cache.as_ref().unwrap().partitioning.is_partitioned());
        assert_eq!(apps.len(), 1);
    }

    #[test]
    fn quota_config_lowers_to_partitioning() {
        let cfg = ExperimentConfig::from_json(
            r#"{
                "cluster": { "partitioning": "strict", "cache_blocks": 100 },
                "apps": [
                    { "name": "victim", "nodes": [0], "total_mb": 1, "request_kb": 64,
                      "mode": "read", "quota_blocks": 80 },
                    { "name": "scanner", "nodes": [0], "total_mb": 1, "request_kb": 64,
                      "mode": "read", "quota_blocks": 20 }
                ]
            }"#,
        )
        .unwrap();
        let p = cfg.partitioning().unwrap();
        assert_eq!(p.mode, PartitionMode::Strict);
        assert_eq!(p.quotas.get(&0), Some(&80));
        assert_eq!(p.quotas.get(&1), Some(&20));
        let (spec, _) = cfg.to_spec().unwrap();
        assert_eq!(spec.cache.as_ref().unwrap().partitioning, p);
    }

    #[test]
    fn bad_partitioning_mode_is_rejected() {
        let cfg = ExperimentConfig::from_json(
            r#"{ "cluster": { "partitioning": "nope" },
                 "apps": [ { "name": "a", "nodes": [0], "total_mb": 1,
                             "request_kb": 64, "mode": "read" } ] }"#,
        )
        .unwrap();
        assert!(cfg.partitioning().is_err());
        assert!(cfg.to_spec().is_err());
    }

    #[test]
    fn adaptive_config_lowers_and_defaults() {
        let cfg = ExperimentConfig::from_json(
            r#"{
                "cluster": { "policy": "adaptive",
                             "adaptive": { "candidates": ["clock", "lfu", "sharing-aware"],
                                           "epoch_accesses": 256, "hysteresis": 0.05,
                                           "quota_tuning": false, "quota_step": 4,
                                           "quota_floor": 16 } },
                "apps": [ { "name": "a", "nodes": [0], "total_mb": 1,
                            "request_kb": 64, "mode": "read",
                            "phases": [ { "requests": 32, "hotspot": 1.2 },
                                        { "requests": 32, "sharing": 1.0 } ] } ]
            }"#,
        )
        .unwrap();
        let a = cfg.adaptive().unwrap().expect("adaptive config");
        assert_eq!(
            a.candidates,
            vec![PolicyKind::Clock, PolicyKind::Lfu, PolicyKind::SharingAware]
        );
        assert_eq!(a.hysteresis, 0.05);
        assert!(!a.quota_tuning);
        assert_eq!(a.quota_step, 4);
        assert_eq!(a.quota_floor, 16);
        let (spec, apps) = cfg.to_spec().unwrap();
        let cache = spec.cache.as_ref().unwrap();
        assert_eq!(cache.epoch_accesses, 256);
        assert_eq!(cache.policy.kind, PolicyKind::Clock, "first candidate starts live");
        assert_eq!(cache.policy_label(), "adaptive");
        assert_eq!(apps[0].phases.len(), 2);
        assert_eq!(apps[0].phases[0].hotspot, 1.2);
        assert_eq!(apps[0].phases[1].sharing, 1.0);

        // Bare "adaptive" defaults: all six candidates, default epoch.
        let bare = ExperimentConfig::from_json(
            r#"{ "cluster": { "policy": "adaptive" },
                 "apps": [ { "name": "a", "nodes": [0], "total_mb": 1,
                             "request_kb": 64, "mode": "read" } ] }"#,
        )
        .unwrap();
        let a = bare.adaptive().unwrap().unwrap();
        assert_eq!(a.candidates, PolicyKind::ALL.to_vec());
        let (spec, _) = bare.to_spec().unwrap();
        assert_eq!(spec.cache.as_ref().unwrap().epoch_accesses, DEFAULT_EPOCH_ACCESSES);

        // A static-policy config ignores the adaptive section entirely.
        let stat = ExperimentConfig::from_json(
            r#"{ "cluster": { "policy": "arc" },
                 "apps": [ { "name": "a", "nodes": [0], "total_mb": 1,
                             "request_kb": 64, "mode": "read" } ] }"#,
        )
        .unwrap();
        assert!(stat.adaptive().unwrap().is_none());
        assert!(stat.to_spec().unwrap().0.cache.as_ref().unwrap().adaptive.is_none());

        // Unknown candidates are rejected.
        let bad = ExperimentConfig::from_json(
            r#"{ "cluster": { "policy": "adaptive",
                              "adaptive": { "candidates": ["nope"] } },
                 "apps": [ { "name": "a", "nodes": [0], "total_mb": 1,
                             "request_kb": 64, "mode": "read" } ] }"#,
        )
        .unwrap();
        assert!(bad.adaptive().is_err());
        assert!(bad.to_spec().is_err());
    }

    #[test]
    fn cooperative_config_lowers_and_round_trips() {
        // Pre-cooperative configs parse unchanged and stay node-local.
        let old = ExperimentConfig::from_json(
            r#"{ "apps": [ { "name": "a", "nodes": [0], "total_mb": 1,
                             "request_kb": 64, "mode": "read" } ] }"#,
        )
        .unwrap();
        assert!(old.cooperative().unwrap().is_none());
        assert!(old.to_spec().unwrap().0.cache.unwrap().cooperative.is_none());

        let cfg = ExperimentConfig::from_json(
            r#"{ "cluster": { "cooperative": { "enabled": true, "directory": "hint",
                                               "singleton_preserving": false } },
                 "apps": [ { "name": "a", "nodes": [0, 1], "total_mb": 1,
                             "request_kb": 64, "mode": "read", "sharing": 1.0 } ] }"#,
        )
        .unwrap();
        let c = cfg.cooperative().unwrap().expect("cooperative enabled");
        assert_eq!(c.directory, DirectoryMode::Hint);
        assert!(!c.singleton_preserving);
        let (spec, _) = cfg.to_spec().unwrap();
        assert_eq!(spec.cache.unwrap().cooperative, Some(c));

        // serialize → parse is the identity.
        let json = serde_json::to_string_pretty(&cfg).unwrap();
        assert_eq!(ExperimentConfig::from_json(&json).unwrap(), cfg);

        // Bad directory mode is rejected.
        let bad = ExperimentConfig::from_json(
            r#"{ "cluster": { "cooperative": { "enabled": true, "directory": "psychic" } },
                 "apps": [ { "name": "a", "nodes": [0], "total_mb": 1,
                             "request_kb": 64, "mode": "read" } ] }"#,
        )
        .unwrap();
        assert!(bad.cooperative().is_err());
        assert!(bad.to_spec().is_err());
    }

    #[test]
    fn telemetry_config_defaults_off_and_lowers_to_a_hub() {
        // Pre-telemetry configs parse unchanged and carry no hubs.
        let old = ExperimentConfig::from_json(
            r#"{ "apps": [ { "name": "a", "nodes": [0], "total_mb": 1,
                             "request_kb": 64, "mode": "read" } ] }"#,
        )
        .unwrap();
        assert!(!old.cluster.telemetry.enabled);
        let (old_spec, _) = old.to_spec().unwrap();
        assert!(old_spec.obs.is_none());
        assert!(old_spec.cache.unwrap().obs.is_none());
        // SLO and anomaly sections default to the paper-derived knobs.
        assert_eq!(old.cluster.telemetry.slo_targets().fetch_p99_ns_default, 15_000_000);
        assert_eq!(old.cluster.telemetry.slo_targets().fetch_p99_ns_peer, 8_000_000);
        assert_eq!(old.cluster.telemetry.anomaly_rules().min_epoch_accesses, 64);

        let cfg = ExperimentConfig::from_json(
            r#"{ "cluster": { "nodes": 3,
                              "telemetry": { "enabled": true, "trace_capacity": 128,
                                             "slo": { "fetch_p99_ms_peer": 2.5 } } },
                 "apps": [ { "name": "a", "nodes": [0], "total_mb": 1,
                             "request_kb": 64, "mode": "read" } ] }"#,
        )
        .unwrap();
        let (spec, _) = cfg.to_spec().unwrap();
        let cluster = spec.obs.as_ref().expect("telemetry lowers to federated per-node hubs");
        assert_eq!(cluster.node_count(), 3);
        assert_eq!(cluster.trace_dropped(), 0);
        // The builder hands out hubs; CacheConfig itself carries none.
        let cache = spec.cache.unwrap();
        assert!(cache.obs.is_none());
        assert_eq!(cache.slo.fetch_p99_ns_peer, 2_500_000);

        // serialize → parse is the identity.
        let json = serde_json::to_string_pretty(&cfg).unwrap();
        assert_eq!(ExperimentConfig::from_json(&json).unwrap(), cfg);
    }

    #[test]
    fn json_round_trip_preserves_quotas() {
        let mut cfg = ExperimentConfig {
            cluster: ClusterCfg { partitioning: "soft".into(), ..ClusterCfg::default() },
            apps: vec![AppCfg {
                name: "a".into(),
                nodes: vec![0, 1],
                total_mb: 2,
                request_kb: 64,
                mode: "read".into(),
                locality: 0.25,
                sharing: 0.5,
                hotspot: 0.9,
                start_delay_ms: 3,
                quota_blocks: 123,
                phases: Vec::new(),
            }],
        };
        cfg.cluster.seed = 99;
        let json = serde_json::to_string_pretty(&cfg).unwrap();
        let back = ExperimentConfig::from_json(&json).unwrap();
        assert_eq!(back, cfg, "serialize → parse must be the identity");
    }
}
